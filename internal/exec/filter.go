package exec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/types"
)

// FilterNode keeps rows whose predicate evaluates to TRUE.
type FilterNode struct {
	base
	Input Node
	Pred  *eval.Compiled
	// Desc describes the predicate for EXPLAIN.
	Desc string
}

// NewFilterNode wraps child with a compiled predicate.
func NewFilterNode(child Node, pred *eval.Compiled, desc string) *FilterNode {
	n := &FilterNode{Input: child, Pred: pred, Desc: desc}
	n.schema = child.Schema()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *FilterNode) Label() string { return "Filter(" + n.Desc + ")" }

// Children implements Node.
func (n *FilterNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node. Morsels filter into per-morsel output slices
// that concatenate in morsel order, preserving the serial row order. On
// the vector path the predicate evaluates per chunk into a selection
// vector; only the selected row references are gathered.
func (n *FilterNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	// Worst case every row passes; the output holds row references only.
	if err := ctx.reserveOrCharge(int64(len(in.Rows)) * rowHdrBytes); err != nil {
		return nil, err
	}
	workers := ctx.workersFor(len(in.Rows))
	ctx.noteWorkers(n, workers)
	vec := ctx.useVector(n.Pred)
	ctx.noteEval(n, vec, len(in.Rows))
	outs := make([][]schema.Row, morselCount(len(in.Rows), workers))
	err = ctx.parallelFor(len(in.Rows), workers, func(_, m, lo, hi int) error {
		out := make([]schema.Row, 0, (hi-lo)/4+1)
		if vec {
			sel := make([]int, 0, MorselSize)
			err := ctx.forBatches(lo, hi, func(b, e int) error {
				var perr error
				sel, perr = eval.EvalPredicateBatch(n.Pred, in.Rows[b:e], nil, sel[:0])
				if perr != nil {
					return perr
				}
				for _, i := range sel {
					out = append(out, in.Rows[b+i])
				}
				return nil
			})
			if err != nil {
				return err
			}
			outs[m] = out
			return nil
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Tick(i - lo); err != nil {
				return err
			}
			r := in.Rows[i]
			ok, err := eval.EvalPredicate(n.Pred, r)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, r)
			}
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Schema: n.schema, Rows: concatMorsels(outs)}, nil
}

// ProjectNode computes output columns from input rows.
type ProjectNode struct {
	base
	Input Node
	Exprs []*eval.Compiled
}

// NewProjectNode builds a projection with a prepared output schema.
func NewProjectNode(child Node, out *schema.Schema, exprs []*eval.Compiled) *ProjectNode {
	n := &ProjectNode{Input: child, Exprs: exprs}
	n.schema = out
	n.estRows = child.EstRows()
	return n
}

// Label implements Node.
func (n *ProjectNode) Label() string { return fmt.Sprintf("Project(%d cols)", n.schema.Len()) }

// Children implements Node.
func (n *ProjectNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node. Workers write disjoint output positions, so
// projection parallelizes with no ordering concern at all. The vector
// path evaluates each expression over a whole chunk into column vectors,
// then assembles output rows from one flat backing array per chunk.
func (n *ProjectNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	ne := len(n.Exprs)
	if err := ctx.reserveOrCharge(int64(len(in.Rows)) * (rowHdrBytes + int64(ne)*valueBytes)); err != nil {
		return nil, err
	}
	workers := ctx.workersFor(len(in.Rows))
	ctx.noteWorkers(n, workers)
	vec := ctx.useVector(n.Exprs...)
	ctx.noteEval(n, vec, len(in.Rows))
	out := make([]schema.Row, len(in.Rows))
	projectSerial := func(b, e int) error {
		for i := b; i < e; i++ {
			if err := ctx.Tick(i - b); err != nil {
				return err
			}
			r := in.Rows[i]
			row := make(schema.Row, ne)
			for j, f := range n.Exprs {
				v, err := f.Eval(r)
				if err != nil {
					return err
				}
				row[j] = v
			}
			out[i] = row
		}
		return nil
	}
	err = ctx.parallelFor(len(in.Rows), workers, func(_, _, lo, hi int) error {
		if !vec {
			return projectSerial(lo, hi)
		}
		cols := evalScratch(ne, MorselSize)
		return ctx.forBatches(lo, hi, func(b, e int) error {
			chunk := in.Rows[b:e]
			if !tryBatchAll(n.Exprs, chunk, cols) {
				return projectSerial(b, e)
			}
			flat := make([]types.Value, len(chunk)*ne)
			for i := range chunk {
				row := flat[i*ne : (i+1)*ne : (i+1)*ne]
				for j := 0; j < ne; j++ {
					row[j] = cols[j][i]
				}
				out[b+i] = row
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// SortNode orders rows by compiled key expressions.
type SortNode struct {
	base
	Input Node
	Keys  []*eval.Compiled
	Desc  []bool
}

// NewSortNode builds a sort over child.
func NewSortNode(child Node, keys []*eval.Compiled, desc []bool) *SortNode {
	n := &SortNode{Input: child, Keys: keys, Desc: desc}
	n.schema = child.Schema()
	n.estRows = child.EstRows()
	return n
}

// Label implements Node.
func (n *SortNode) Label() string { return fmt.Sprintf("Sort(%d keys)", len(n.Keys)) }

// Children implements Node.
func (n *SortNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node. Sort keys are evaluated exactly once per row
// (never per comparison), morsel-parallel; the sort itself runs as
// stable per-chunk sorts over contiguous input ranges followed by a
// stable k-way merge (ties go to the earlier chunk), which yields the
// same permutation as a serial stable sort.
func (n *SortNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	nrows := len(in.Rows)
	nk := len(n.Keys)
	// Reserve the full working set (key tuples, permutation, output row
	// references). If the budget refuses it and the query may spill, fall
	// back to the external merge sort; otherwise the reservation error is
	// the query's clean failure.
	work := sortWorkBytes(nrows, nk)
	if err := ctx.res.Reserve(work + int64(nrows)*rowHdrBytes); err != nil {
		if !ctx.res.CanSpill() {
			return nil, err
		}
		return n.externalSort(ctx, in)
	}
	// The output row references stay charged; the key tuples are scratch.
	defer ctx.res.Release(work)
	workers := ctx.workersFor(nrows)
	ctx.noteWorkers(n, workers)
	vec := ctx.useVector(n.Keys...)
	ctx.noteEval(n, vec, nrows)

	keys := make([][]types.Value, nrows)
	keysSerial := func(b, e int) error {
		for i := b; i < e; i++ {
			if err := ctx.Tick(i - b); err != nil {
				return err
			}
			ks := make([]types.Value, nk)
			for j, f := range n.Keys {
				v, err := f.Eval(in.Rows[i])
				if err != nil {
					return err
				}
				ks[j] = v
			}
			keys[i] = ks
		}
		return nil
	}
	err = ctx.parallelFor(nrows, workers, func(_, _, lo, hi int) error {
		if !vec {
			return keysSerial(lo, hi)
		}
		cols := evalScratch(nk, MorselSize)
		return ctx.forBatches(lo, hi, func(b, e int) error {
			chunk := in.Rows[b:e]
			if !tryBatchAll(n.Keys, chunk, cols) {
				return keysSerial(b, e)
			}
			flat := make([]types.Value, len(chunk)*nk)
			for i := range chunk {
				ks := flat[i*nk : (i+1)*nk : (i+1)*nk]
				for j := 0; j < nk; j++ {
					ks[j] = cols[j][i]
				}
				keys[b+i] = ks
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}

	idx := make([]int, nrows)
	for i := range idx {
		idx[i] = i
	}
	if workers <= 1 {
		sort.SliceStable(idx, func(a, b int) bool {
			return n.cmpKeys(keys[idx[a]], keys[idx[b]]) < 0
		})
	} else {
		if err := n.parallelSort(ctx, idx, keys, workers); err != nil {
			return nil, err
		}
	}

	out := make([]schema.Row, nrows)
	for i, id := range idx {
		out[i] = in.Rows[id]
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// cmpKeys orders two evaluated key tuples under the node's directions.
func (n *SortNode) cmpKeys(ka, kb []types.Value) int {
	for j := range n.Keys {
		c := compareForSort(ka[j], kb[j])
		if c == 0 {
			continue
		}
		if n.Desc[j] {
			return -c
		}
		return c
	}
	return 0
}

// parallelSort stable-sorts idx in place: contiguous chunks sort on
// separate goroutines, then a k-way merge picks the smallest head each
// step, breaking ties toward the earliest chunk. Chunks are contiguous
// input ranges, so earliest-chunk tie-breaking is exactly the stability
// rule, and the merged permutation equals the serial stable sort's.
func (n *SortNode) parallelSort(ctx *Ctx, idx []int, keys [][]types.Value, workers int) error {
	nrows := len(idx)
	chunk := (nrows + workers - 1) / workers
	type span struct{ lo, hi int }
	var spans []span
	for lo := 0; lo < nrows; lo += chunk {
		hi := lo + chunk
		if hi > nrows {
			hi = nrows
		}
		spans = append(spans, span{lo, hi})
	}
	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	for si, sp := range spans {
		wg.Add(1)
		go func(si int, sub []int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[si] = govern.Internalize(rec)
				}
			}()
			ctx.res.MaybePanic()
			sort.SliceStable(sub, func(a, b int) bool {
				return n.cmpKeys(keys[sub[a]], keys[sub[b]]) < 0
			})
		}(si, idx[sp.lo:sp.hi])
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return err
	}
	if err := ctx.Canceled(); err != nil {
		return err
	}

	heads := make([]int, len(spans))
	for i, sp := range spans {
		heads[i] = sp.lo
	}
	merged := make([]int, 0, nrows)
	for len(merged) < nrows {
		if err := ctx.Tick(len(merged)); err != nil {
			return err
		}
		best := -1
		for c, sp := range spans {
			if heads[c] >= sp.hi {
				continue
			}
			if best < 0 || n.cmpKeys(keys[idx[heads[c]]], keys[idx[heads[best]]]) < 0 {
				best = c
			}
		}
		merged = append(merged, idx[heads[best]])
		heads[best]++
	}
	copy(idx, merged)
	return nil
}

// compareForSort orders values with NULLS FIRST and falls back to kind
// order for incomparable kinds so the sort stays total.
func compareForSort(a, b types.Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, err := types.Compare(a, b); err == nil {
		return c
	}
	switch {
	case a.Kind() < b.Kind():
		return -1
	case a.Kind() > b.Kind():
		return 1
	}
	return 0
}

// LimitNode skips Offset rows then truncates to N (N < 0 means no limit,
// offset only).
type LimitNode struct {
	base
	Input  Node
	N      int64
	Offset int64
}

// NewLimitNode wraps child with LIMIT n (pass n < 0 for OFFSET-only).
func NewLimitNode(child Node, limit int64) *LimitNode {
	n := &LimitNode{Input: child, N: limit}
	n.schema = child.Schema()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *LimitNode) Label() string {
	if n.Offset > 0 {
		return fmt.Sprintf("Limit(%d offset %d)", n.N, n.Offset)
	}
	return fmt.Sprintf("Limit(%d)", n.N)
}

// Children implements Node.
func (n *LimitNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *LimitNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	rows := in.Rows
	if n.Offset > 0 {
		if int64(len(rows)) <= n.Offset {
			rows = nil
		} else {
			rows = rows[n.Offset:]
		}
	}
	if n.N >= 0 && int64(len(rows)) > n.N {
		rows = rows[:n.N]
	}
	return &Result{Schema: n.schema, Rows: rows}, nil
}

// DistinctNode removes duplicate rows (all columns), keeping first
// occurrences in input order.
type DistinctNode struct {
	base
	Input Node
}

// NewDistinctNode wraps child with duplicate elimination.
func NewDistinctNode(child Node) *DistinctNode {
	n := &DistinctNode{Input: child}
	n.schema = child.Schema()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *DistinctNode) Label() string { return "Distinct" }

// Children implements Node.
func (n *DistinctNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *DistinctNode) Execute(ctx *Ctx) (*Result, error) {
	in, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	if err := ctx.reserveOrCharge(int64(len(in.Rows)) * (rowHdrBytes + keyRefBytes)); err != nil {
		return nil, err
	}
	seen := newRowSet(len(in.Rows))
	var enc keyEnc
	out := make([]schema.Row, 0, len(in.Rows))
	for i, r := range in.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		if seen.add(enc.row(r)) {
			out = append(out, r)
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// SetOpKind distinguishes EXCEPT from INTERSECT in SetOpNode.
type SetOpKind uint8

// Set-operation kinds.
const (
	SetOpExcept SetOpKind = iota
	SetOpIntersect
)

// SetOpNode implements EXCEPT and INTERSECT with SQL set semantics
// (duplicates eliminated, left input order preserved).
type SetOpNode struct {
	base
	Left, Right Node
	Kind        SetOpKind
}

// NewSetOpNode builds EXCEPT/INTERSECT over two inputs of equal arity.
func NewSetOpNode(l, r Node, kind SetOpKind) (*SetOpNode, error) {
	if l.Schema().Len() != r.Schema().Len() {
		return nil, fmt.Errorf("exec: set operation arity mismatch: %d vs %d", l.Schema().Len(), r.Schema().Len())
	}
	n := &SetOpNode{Left: l, Right: r, Kind: kind}
	n.schema = l.Schema()
	return n, nil
}

// Label implements Node.
func (n *SetOpNode) Label() string {
	if n.Kind == SetOpIntersect {
		return "Intersect"
	}
	return "Except"
}

// Children implements Node.
func (n *SetOpNode) Children() []Node { return []Node{n.Left, n.Right} }

// Execute implements Node. The two inputs execute concurrently.
func (n *SetOpNode) Execute(ctx *Ctx) (*Result, error) {
	l, r, err := runPair(ctx, n.Left, n.Right)
	if err != nil {
		return nil, err
	}
	if err := ctx.reserveOrCharge(int64(len(l.Rows)+len(r.Rows)) * (rowHdrBytes + keyRefBytes)); err != nil {
		return nil, err
	}
	var enc keyEnc
	right := newRowSet(len(r.Rows))
	for i, row := range r.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		right.add(enc.row(row))
	}
	seen := newRowSet(len(l.Rows))
	var out []schema.Row
	for i, row := range l.Rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		k := enc.row(row)
		if !seen.add(k) {
			continue
		}
		if (n.Kind == SetOpExcept) != right.contains(k) {
			out = append(out, row)
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}

// UnionNode concatenates two inputs; Distinct applies set semantics.
type UnionNode struct {
	base
	Left, Right Node
	Distinct    bool
}

// NewUnionNode combines two inputs with UNION [ALL] semantics.
func NewUnionNode(l, r Node, distinct bool) (*UnionNode, error) {
	if l.Schema().Len() != r.Schema().Len() {
		return nil, fmt.Errorf("exec: UNION arity mismatch: %d vs %d", l.Schema().Len(), r.Schema().Len())
	}
	n := &UnionNode{Left: l, Right: r, Distinct: distinct}
	n.schema = l.Schema()
	return n, nil
}

// Label implements Node.
func (n *UnionNode) Label() string {
	if n.Distinct {
		return "Union"
	}
	return "UnionAll"
}

// Children implements Node.
func (n *UnionNode) Children() []Node { return []Node{n.Left, n.Right} }

// Execute implements Node. The two inputs execute concurrently.
func (n *UnionNode) Execute(ctx *Ctx) (*Result, error) {
	l, r, err := runPair(ctx, n.Left, n.Right)
	if err != nil {
		return nil, err
	}
	perRow := int64(rowHdrBytes)
	if n.Distinct {
		perRow += keyRefBytes
	}
	if err := ctx.reserveOrCharge(int64(len(l.Rows)+len(r.Rows)) * perRow); err != nil {
		return nil, err
	}
	rows := make([]schema.Row, 0, len(l.Rows)+len(r.Rows))
	rows = append(rows, l.Rows...)
	rows = append(rows, r.Rows...)
	if !n.Distinct {
		return &Result{Schema: n.schema, Rows: rows}, nil
	}
	var enc keyEnc
	seen := newRowSet(len(rows))
	out := rows[:0:0]
	for i, row := range rows {
		if err := ctx.Tick(i); err != nil {
			return nil, err
		}
		if seen.add(enc.row(row)) {
			out = append(out, row)
		}
	}
	return &Result{Schema: n.schema, Rows: out}, nil
}
