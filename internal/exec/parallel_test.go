package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
)

// bigRows builds a deterministic mixed-type table comfortably above
// ParallelThreshold: id ascending, k with heavy duplication (exercises
// sort stability and grouping), f a float payload, s a low-cardinality
// string, plus a NULL sprinkled into every column.
func bigRows(n int) []schema.Row {
	rows := make([]schema.Row, n)
	for i := 0; i < n; i++ {
		id := types.NewInt(int64(i))
		k := types.NewInt(int64((i * 7919) % 97))
		f := types.NewFloat(float64(i%1000) * 0.125)
		s := types.NewString(fmt.Sprintf("s%02d", i%53))
		if i%211 == 0 {
			k = types.Null
		}
		if i%307 == 0 {
			f = types.Null
		}
		rows[n-1-i] = schema.Row{id, k, f, s}
	}
	return rows
}

func bigSchema() *schema.Schema {
	s := &schema.Schema{}
	for i, n := range []string{"id", "k", "f", "s"} {
		kind := types.KindInt
		switch i {
		case 2:
			kind = types.KindFloat
		case 3:
			kind = types.KindString
		}
		s.Columns = append(s.Columns, schema.Col("t", n, kind))
	}
	return s
}

// execBoth runs the same plan serially and with 8 workers and asserts
// the outputs are identical cell by cell — the core determinism
// guarantee of the morsel framework.
func execBoth(t *testing.T, n Node) {
	t.Helper()
	serial, err := Run(NewCtx().SetParallelism(1), n)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(NewCtx().SetParallelism(8), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row count: serial %d vs parallel %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if len(serial.Rows[i]) != len(parallel.Rows[i]) {
			t.Fatalf("row %d width mismatch", i)
		}
		for j := range serial.Rows[i] {
			a, b := serial.Rows[i][j], parallel.Rows[i][j]
			if !a.Equal(b) || a.IsNull() != b.IsNull() {
				t.Fatalf("row %d col %d: serial %s vs parallel %s", i, j, a.SQL(), b.SQL())
			}
		}
	}
}

func TestParallelFilterMatchesSerial(t *testing.T) {
	in := NewValuesNode(bigSchema(), bigRows(20000))
	pred := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		if r[1].IsNull() {
			return types.Null, nil
		}
		return types.NewBool(r[1].Int()%3 == 0), nil
	})
	execBoth(t, NewFilterNode(in, pred, "k%3=0"))
}

func TestParallelProjectMatchesSerial(t *testing.T) {
	in := NewValuesNode(bigSchema(), bigRows(20000))
	double := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		return types.NewInt(r[0].Int() * 2), nil
	})
	execBoth(t, NewProjectNode(in, intSchema("a", "b"), []*eval.Compiled{colFn(0), double}))
}

func TestParallelSortMatchesSerial(t *testing.T) {
	// Heavy duplication in the key makes any stability violation visible.
	in := NewValuesNode(bigSchema(), bigRows(30000))
	execBoth(t, NewSortNode(in, []*eval.Compiled{colFn(1), colFn(3)}, []bool{false, true}))
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	// id%4096 keeps per-key match lists short (a few rows) while still
	// exercising duplicate keys and NULL handling.
	modKey := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		if r[0].Int()%977 == 0 {
			return types.Null, nil
		}
		return types.NewInt(r[0].Int() % 4096), nil
	})
	build := func(kind JoinKind, residual *eval.Compiled) Node {
		l := NewValuesNode(bigSchema(), bigRows(20000))
		r := NewValuesNode(bigSchema(), bigRows(9000))
		return NewHashJoinNode(l, r, []*eval.Compiled{modKey}, []*eval.Compiled{modKey}, kind, residual, "k=k")
	}
	t.Run("inner", func(t *testing.T) { execBoth(t, build(JoinKindInner, nil)) })
	t.Run("left", func(t *testing.T) { execBoth(t, build(JoinKindLeft, nil)) })
	t.Run("residual", func(t *testing.T) {
		res := eval.FromFunc(func(r schema.Row) (types.Value, error) {
			return types.NewBool(r[0].Int() < r[4].Int()), nil
		})
		execBoth(t, build(JoinKindInner, res))
	})
}

func TestParallelGroupMatchesSerial(t *testing.T) {
	in := NewValuesNode(bigSchema(), bigRows(25000))
	out := &schema.Schema{}
	for _, n := range []string{"k", "c", "cd", "sf", "si", "av", "mn", "mx"} {
		out.Columns = append(out.Columns, schema.Col("", n, types.KindInt))
	}
	aggs := []AggSpec{
		{Func: "count", OutName: "c"},
		{Func: "count", Arg: colFn(3), Distinct: true, OutName: "cd"},
		{Func: "sum", Arg: colFn(2), OutName: "sf"},
		{Func: "sum", Arg: colFn(0), OutName: "si"},
		{Func: "avg", Arg: colFn(2), OutName: "av"},
		{Func: "min", Arg: colFn(0), OutName: "mn"},
		{Func: "max", Arg: colFn(2), OutName: "mx"},
	}
	execBoth(t, NewGroupNode(in, out, []*eval.Compiled{colFn(1)}, aggs))
}

func TestParallelGlobalAggMatchesSerial(t *testing.T) {
	in := NewValuesNode(bigSchema(), bigRows(25000))
	out := &schema.Schema{Columns: []schema.Column{schema.Col("", "sf", types.KindFloat)}}
	execBoth(t, NewGroupNode(in, out, nil, []AggSpec{{Func: "sum", Arg: colFn(2), OutName: "sf"}}))
}

func TestParallelDistinctAndSetOpsMatchSerial(t *testing.T) {
	proj := func(n int) Node {
		in := NewValuesNode(bigSchema(), bigRows(n))
		return NewProjectNode(in, intSchema("k", "s"), []*eval.Compiled{colFn(1), colFn(3)})
	}
	t.Run("distinct", func(t *testing.T) { execBoth(t, NewDistinctNode(proj(20000))) })
	t.Run("union", func(t *testing.T) {
		n, err := NewUnionNode(proj(15000), proj(9000), true)
		if err != nil {
			t.Fatal(err)
		}
		execBoth(t, n)
	})
	t.Run("except", func(t *testing.T) {
		n, err := NewSetOpNode(proj(15000), proj(9000), SetOpExcept)
		if err != nil {
			t.Fatal(err)
		}
		execBoth(t, n)
	})
	t.Run("intersect", func(t *testing.T) {
		n, err := NewSetOpNode(proj(15000), proj(9000), SetOpIntersect)
		if err != nil {
			t.Fatal(err)
		}
		execBoth(t, n)
	})
}

func TestParallelIndexScanMatchesSerial(t *testing.T) {
	tab := storage.NewTable("t", intSchema("a"))
	for i := 0; i < 20000; i++ {
		tab.Append(schema.Row{types.NewInt(int64((i * 7919) % 20011))})
	}
	tab.BuildIndex("a")
	lo := types.NewInt(100)
	scan := NewScanNode(tab, "t")
	scan.IndexOrd = 0
	scan.Bounds = storage.Bounds{Lo: &lo, LoIncl: true}
	execBoth(t, scan)
}

// Sort keys must be computed once per row, never per comparison — a
// counting key function proves it at both parallelism settings.
func TestSortEvaluatesKeysOncePerRow(t *testing.T) {
	const n = 20000
	for _, par := range []int{1, 8} {
		in := NewValuesNode(bigSchema(), bigRows(n))
		var calls atomic.Int64
		key := eval.FromFunc(func(r schema.Row) (types.Value, error) {
			calls.Add(1)
			return r[1], nil
		})
		if _, err := Run(NewCtx().SetParallelism(par), NewSortNode(in, []*eval.Compiled{key}, []bool{false})); err != nil {
			t.Fatal(err)
		}
		if got := calls.Load(); got != n {
			t.Fatalf("par=%d: key func called %d times for %d rows", par, got, n)
		}
	}
}

// AppendGroupKey must encode exactly like GroupKey for every kind —
// the keyEnc fast path and the accumulator's DISTINCT map must agree on
// value identity.
func TestAppendGroupKeyMatchesGroupKey(t *testing.T) {
	vals := []types.Value{
		types.Null,
		types.NewBool(true),
		types.NewBool(false),
		types.NewInt(-42),
		types.NewInt(1 << 40),
		types.NewFloat(3.25),
		types.NewFloat(-0.0),
		types.NewString(""),
		types.NewString("abc\x00def"),
		types.NewTime(1158019200000000),
		types.NewInterval(-5000000),
	}
	for _, v := range vals {
		if got, want := string(v.AppendGroupKey(nil)), v.GroupKey(); got != want {
			t.Errorf("%s: AppendGroupKey %q != GroupKey %q", v.SQL(), got, want)
		}
	}
}

// The keying hot path — encode a row and hash it — must not allocate.
func TestKeyEncodingZeroAllocs(t *testing.T) {
	row := schema.Row{types.NewInt(12345), types.NewString("case07"), types.NewFloat(2.5), types.Null}
	var enc keyEnc
	enc.row(row) // warm the scratch buffer
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		sink += hashKey(enc.row(row))
	})
	if allocs != 0 {
		t.Fatalf("key encode+hash allocates %.1f per row", allocs)
	}
	_ = sink
}

// BenchmarkRowKeying contrasts the legacy per-row string-concatenation
// key (what joinKey/rowKey/the group-by map used to build) with the
// maphash scratch-buffer encoder: the new path is allocation-free.
func BenchmarkRowKeying(b *testing.B) {
	rows := bigRows(4096)
	b.Run("string-concat", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			r := rows[i%len(rows)]
			kb := make([]byte, 0, 16)
			for _, v := range r {
				kb = append(kb, v.GroupKey()...)
				kb = append(kb, 0x1f)
			}
			sink += len(string(kb))
		}
		_ = sink
	})
	b.Run("maphash", func(b *testing.B) {
		b.ReportAllocs()
		var enc keyEnc
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += hashKey(enc.row(rows[i%len(rows)]))
		}
		_ = sink
	})
}

// Canceling mid-operator must stop parallel workers: a predicate cancels
// the context partway through a large parallel filter, and the query
// must fail with the context's error.
func TestCancellationInsideParallelOperator(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := NewValuesNode(bigSchema(), bigRows(200000))
	var n atomic.Int64
	pred := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		if n.Add(1) == 10000 {
			cancel()
		}
		return types.NewBool(true), nil
	})
	_, err := Run(NewCtxWith(ctx).SetParallelism(8), NewFilterNode(in, pred, "cancelable"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// EXPLAIN ANALYZE must surface per-operator fan-out.
func TestExplainAnalyzeReportsWorkers(t *testing.T) {
	in := NewValuesNode(bigSchema(), bigRows(20000))
	n := NewFilterNode(in, eval.FromFunc(func(schema.Row) (types.Value, error) { return types.NewBool(true), nil }), "true")
	ctx := NewAnalyzeCtx().SetParallelism(4)
	if _, err := Run(ctx, n); err != nil {
		t.Fatal(err)
	}
	st := ctx.Stats(n)
	if st == nil || st.Workers != 4 {
		t.Fatalf("stats = %+v, want Workers=4", st)
	}
	out := ExplainAnalyze(n, ctx)
	if want := "workers=4"; !strings.Contains(out, want) {
		t.Fatalf("ExplainAnalyze missing %q:\n%s", want, out)
	}
}
