package exec

import (
	"context"
	"errors"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
)

// collectStream drains a stream, copying every batch (batches may alias
// engine buffers that the next call invalidates).
func collectStream(st Stream) ([]schema.Row, error) {
	defer st.Close()
	var out []schema.Row
	for {
		b, err := st.Next()
		if err != nil {
			return out, err
		}
		if b == nil {
			return out, nil
		}
		for _, r := range b {
			out = append(out, append(schema.Row{}, r...))
		}
	}
}

// streamTable builds a two-column table big enough that parallel scans
// split it across many morsels.
func streamTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tab := storage.NewTable("t", intSchema("a", "b"))
	for i := 0; i < n; i++ {
		tab.Append(schema.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 17))})
	}
	return tab
}

// evenPred keeps rows with an even first column.
func evenPred() *eval.Compiled {
	return eval.FromFunc(func(r schema.Row) (types.Value, error) {
		return types.NewBool(r[0].Int()%2 == 0), nil
	})
}

// fusedScan is a sequential scan with the predicate fused in — the
// streaming fast path.
func fusedEvenScan(tab *storage.Table) *ScanNode {
	s := NewScanNode(tab, "t")
	s.Pred = evenPred()
	s.PredDesc = "a%2=0"
	return s
}

// streamPlans enumerates one plan per streaming source plus the breaker
// and shared-subtree fallbacks. Each call builds fresh nodes so plans
// never share executor-visible state across runs.
func streamPlans(tab *storage.Table) map[string]func() Node {
	double := func() *eval.Compiled {
		return eval.FromFunc(func(r schema.Row) (types.Value, error) {
			return types.NewInt(r[0].Int() * 2), nil
		})
	}
	return map[string]func() Node{
		"fused-scan": func() Node { return fusedEvenScan(tab) },
		"plain-scan": func() Node { return NewScanNode(tab, "t") },
		"filter": func() Node {
			return NewFilterNode(NewScanNode(tab, "t"), evenPred(), "a%2=0")
		},
		"project-over-filter": func() Node {
			f := NewFilterNode(NewScanNode(tab, "t"), evenPred(), "a%2=0")
			return NewProjectNode(f, intSchema("d", "b"), []*eval.Compiled{double(), colFn(1)})
		},
		"limit-offset": func() Node {
			l := NewLimitNode(fusedEvenScan(tab), 100)
			l.Offset = 7
			return l
		},
		"hash-join": func() Node {
			dim := NewValuesNode(intSchema("k", "v"), intRows(
				[]int64{0, 100}, []int64{3, 103}, []int64{7, 107}, []int64{11, 111},
			))
			probe := NewProjectNode(NewScanNode(tab, "t"), intSchema("m", "a"),
				[]*eval.Compiled{eval.FromFunc(func(r schema.Row) (types.Value, error) {
					return types.NewInt(r[0].Int() % 13), nil
				}), colFn(0)})
			return NewHashJoinNode(probe, dim, []*eval.Compiled{colFn(0)}, []*eval.Compiled{colFn(0)}, JoinKindInner, nil, "m=k")
		},
		"sort-breaker": func() Node {
			return NewSortNode(fusedEvenScan(tab), []*eval.Compiled{colFn(1), colFn(0)}, []bool{false, true})
		},
		"group-breaker": func() Node {
			return NewGroupNode(NewScanNode(tab, "t"), intSchema("b", "cnt"),
				[]*eval.Compiled{colFn(1)}, []AggSpec{{Func: "count", OutName: "cnt"}})
		},
		"distinct": func() Node {
			return NewDistinctNode(NewProjectNode(NewScanNode(tab, "t"), intSchema("b"), []*eval.Compiled{colFn(1)}))
		},
		"shared-subtree": func() Node {
			shared := NewFilterNode(NewScanNode(tab, "t"), evenPred(), "a%2=0")
			u, err := NewUnionNode(shared, shared, false)
			if err != nil {
				panic(err)
			}
			return u
		},
	}
}

func TestStreamMatchesRunAcrossPlans(t *testing.T) {
	tab := streamTable(t, 20000)
	for name, mk := range streamPlans(tab) {
		for _, par := range []int{1, 4} {
			n := mk()
			want, err := Run(NewCtx().SetParallelism(par), n)
			if err != nil {
				t.Fatalf("%s par=%d: Run: %v", name, par, err)
			}
			got, err := collectStream(Open(NewCtx().SetParallelism(par), mk()))
			if err != nil {
				t.Fatalf("%s par=%d: stream: %v", name, par, err)
			}
			if len(got) != len(want.Rows) {
				t.Fatalf("%s par=%d: stream rows = %d, Run rows = %d", name, par, len(got), len(want.Rows))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want.Rows[i]) {
					t.Fatalf("%s par=%d: row %d differs: stream %v, run %v", name, par, i, got[i], want.Rows[i])
				}
			}
		}
	}
}

func TestStreamRecordsNodeStats(t *testing.T) {
	tab := streamTable(t, 20000)
	n := fusedEvenScan(tab)
	ctx := NewCtx().SetParallelism(4).EnableStats()
	rows, err := collectStream(Open(ctx, n))
	if err != nil {
		t.Fatal(err)
	}
	st := ctx.Stats(n)
	if st == nil || st.Rows != len(rows) {
		t.Fatalf("stats = %+v, want Rows = %d", st, len(rows))
	}
}

func TestStreamEarlyCloseReleasesMemory(t *testing.T) {
	tab := streamTable(t, 20000)
	plans := map[string]func() Node{
		"fused-scan": func() Node { return fusedEvenScan(tab) },
		"project-chain": func() Node {
			f := NewFilterNode(NewScanNode(tab, "t"), evenPred(), "a%2=0")
			return NewProjectNode(f, intSchema("a", "b"), []*eval.Compiled{colFn(0), colFn(1)})
		},
		"hash-join": func() Node {
			dim := NewValuesNode(intSchema("k"), intRows([]int64{0}, []int64{2}, []int64{4}))
			return NewHashJoinNode(NewScanNode(tab, "t"), dim,
				[]*eval.Compiled{eval.FromFunc(func(r schema.Row) (types.Value, error) {
					return types.NewInt(r[0].Int() % 6), nil
				})},
				[]*eval.Compiled{colFn(0)}, JoinKindInner, nil, "a%6=k")
		},
	}
	for name, mk := range plans {
		for _, par := range []int{1, 4} {
			res := govern.NewResources(0, false, "", govern.Inject{})
			st := Open(NewCtx().SetParallelism(par).SetResources(res), mk())
			b, err := st.Next()
			if err != nil {
				t.Fatalf("%s par=%d: first Next: %v", name, par, err)
			}
			if len(b) == 0 {
				t.Fatalf("%s par=%d: first Next returned no rows", name, par)
			}
			if res.Used() == 0 {
				t.Fatalf("%s par=%d: no memory charged while streaming", name, par)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("%s par=%d: Close: %v", name, par, err)
			}
			if used := res.Used(); used != 0 {
				t.Fatalf("%s par=%d: %d bytes still charged after early Close", name, par, used)
			}
			res.Close()
		}
	}
}

func TestStreamEarlyCloseLeavesNoSpillFiles(t *testing.T) {
	// A sort tight enough to spill runs under the stream, then the stream
	// is abandoned after one batch. The sort's run files must already be
	// merged away, and the join of stream workers must not resurrect any.
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	sortn := NewSortNode(in, []*eval.Compiled{colFn(0), colFn(2)}, []bool{false, true})

	ctx, res := spillCtx(t, 64<<10)
	st := Open(ctx, sortn)
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if !res.Stats().Spilled() {
		t.Fatal("sort did not spill under a 64KiB budget")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoSpillFiles(t, res)
}

func TestStreamCancelMidStream(t *testing.T) {
	tab := streamTable(t, 20000)
	for _, par := range []int{1, 4} {
		cctx, cancel := context.WithCancel(context.Background())
		st := Open(NewCtxWith(cctx).SetParallelism(par), fusedEvenScan(tab))
		if _, err := st.Next(); err != nil {
			t.Fatalf("par=%d: first Next: %v", par, err)
		}
		cancel()
		var err error
		for i := 0; i < 100; i++ {
			var b []schema.Row
			if b, err = st.Next(); err != nil || b == nil {
				break
			}
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		// The error is sticky.
		if _, err2 := st.Next(); !errors.Is(err2, context.Canceled) {
			t.Fatalf("par=%d: second err = %v, want the same cancellation", par, err2)
		}
		st.Close()
	}
}

func TestStreamSlowOpHonorsCancellation(t *testing.T) {
	tab := streamTable(t, 20000)
	res := govern.NewResources(0, false, "", govern.Inject{SlowOp: 30 * time.Second})
	defer res.Close()
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	st := Open(NewCtxWith(cctx).SetResources(res), fusedEvenScan(tab))
	start := time.Now()
	_, err := st.Next()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("SlowOp injection ignored the cancellation")
	}
	st.Close()
}

func TestStreamWorkerPanicBecomesErrInternal(t *testing.T) {
	tab := streamTable(t, 20000)
	for _, par := range []int{1, 4} {
		res := govern.NewResources(0, false, "", govern.Inject{WorkerPanic: true})
		st := Open(NewCtx().SetParallelism(par).SetResources(res), fusedEvenScan(tab))
		var err error
		for i := 0; i < 100; i++ {
			var b []schema.Row
			if b, err = st.Next(); err != nil || b == nil {
				break
			}
		}
		if !errors.Is(err, govern.ErrInternal) {
			t.Fatalf("par=%d: err = %v, want ErrInternal", par, err)
		}
		st.Close()
		res.Close()

		// The injection is one-shot per query: a fresh stream over the same
		// plan succeeds.
		rows, err := collectStream(Open(NewCtx().SetParallelism(par), fusedEvenScan(tab)))
		if err != nil {
			t.Fatalf("par=%d: stream after panic: %v", par, err)
		}
		if len(rows) == 0 {
			t.Fatalf("par=%d: no rows after recovery", par)
		}
	}
}

func TestStreamWorkersExitOnEarlyClose(t *testing.T) {
	tab := streamTable(t, 50000)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		st := Open(NewCtx().SetParallelism(8), fusedEvenScan(tab))
		if _, err := st.Next(); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d — stream workers leaked", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStreamEmptyResult(t *testing.T) {
	tab := streamTable(t, 100)
	never := eval.FromFunc(func(schema.Row) (types.Value, error) {
		return types.NewBool(false), nil
	})
	st := Open(NewCtx(), NewFilterNode(NewScanNode(tab, "t"), never, "false"))
	b, err := st.Next()
	if err != nil || b != nil {
		t.Fatalf("Next = (%v, %v), want (nil, nil)", b, err)
	}
	// EOS is terminal and Close stays a no-op.
	if b, err := st.Next(); err != nil || b != nil {
		t.Fatalf("post-EOS Next = (%v, %v), want (nil, nil)", b, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// assertNoSpillFiles checks the spill directory holds no leftover files
// before Resources.Close removes it.
func assertNoSpillFiles(t *testing.T, res *govern.Resources) {
	t.Helper()
	dir, err := res.SpillDir()
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("stream left %d spill files behind", len(ents))
	}
}
