package exec

import (
	"sync"

	"repro/internal/govern"
	"repro/internal/schema"
)

// morselPump runs a morsel function over nm pre-built work units and
// delivers the per-morsel outputs strictly in morsel order — the
// streaming counterpart of parallelMorsels + concatMorsels. With more
// than one worker, a pool claims morsels off a shared cursor bounded by
// a small look-ahead window (so an unread stream never materializes the
// whole input); with one worker the morsels run on the consuming
// goroutine. Workers start lazily on the first next call and carry the
// same per-morsel contract as the materializing pool: a cancellation
// poll before each claim, the WorkerPanic injection, and panic
// containment via govern.Internalize. The first error is sticky and
// aborts the remaining morsels.
type morselPump struct {
	ctx     *Ctx
	nm      int
	workers int
	// window bounds how far claims may run ahead of delivery.
	window int
	fn     func(m int) ([]schema.Row, error)

	started    bool
	serialNext int

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	err     error
	claim   int
	deliver int
	pending map[int][]schema.Row
	wg      sync.WaitGroup
}

func newMorselPump(ctx *Ctx, nm, workers int, fn func(m int) ([]schema.Row, error)) *morselPump {
	p := &morselPump{ctx: ctx, nm: nm, workers: workers, window: 2 * workers, fn: fn}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// next returns the next morsel's output in order ((nil, nil) after the
// last morsel). Outputs may be empty slices — the caller skips those.
func (p *morselPump) next() ([]schema.Row, error) {
	if p.workers <= 1 {
		return p.nextSerial()
	}
	if !p.started {
		p.started = true
		p.pending = make(map[int][]schema.Row, p.window)
		for w := 0; w < p.workers; w++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.worker()
			}()
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.err != nil {
			return nil, p.err
		}
		if p.deliver >= p.nm {
			return nil, nil
		}
		if out, ok := p.pending[p.deliver]; ok {
			delete(p.pending, p.deliver)
			p.deliver++
			// The window moved: wake workers parked on the claim bound.
			p.cond.Broadcast()
			return out, nil
		}
		p.cond.Wait()
	}
}

func (p *morselPump) nextSerial() ([]schema.Row, error) {
	if p.serialNext >= p.nm {
		return nil, nil
	}
	if err := p.ctx.Canceled(); err != nil {
		return nil, err
	}
	m := p.serialNext
	p.serialNext++
	// Panics (including the WorkerPanic injection) propagate to the
	// opStream recover, matching the serial materializing path where
	// they reach Run's recover.
	p.ctx.res.MaybePanic()
	return p.fn(m)
}

func (p *morselPump) worker() {
	for {
		p.mu.Lock()
		for !p.closed && p.err == nil && p.claim < p.nm && p.claim >= p.deliver+p.window {
			p.cond.Wait()
		}
		if p.closed || p.err != nil || p.claim >= p.nm {
			p.mu.Unlock()
			return
		}
		m := p.claim
		p.claim++
		p.mu.Unlock()
		if err := p.ctx.Canceled(); err != nil {
			p.fail(err)
			return
		}
		out, err := p.runMorsel(m)
		if err != nil {
			p.fail(err)
			return
		}
		p.mu.Lock()
		p.pending[m] = out
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// runMorsel executes one morsel with the pool's panic containment.
func (p *morselPump) runMorsel(m int) (out []schema.Row, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			out, err = nil, govern.Internalize(rec)
		}
	}()
	p.ctx.res.MaybePanic()
	return p.fn(m)
}

func (p *morselPump) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// close stops the pump: parked workers wake and exit, in-flight morsels
// finish, and the pool joins before close returns — no goroutine
// outlives the stream.
func (p *morselPump) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
