package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/types"
)

// mixedRows builds a deterministic input with heavy key ties (so run
// merges and grace partitions exercise stability), float payloads (so
// accumulation order is observable bit-for-bit), and strings (so the
// spill codec's variable-length path runs).
func mixedRows(n int) []schema.Row {
	rows := make([]schema.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = schema.Row{
			types.NewInt(int64(i % 97)),
			types.NewFloat(float64(i%31) * 0.125),
			types.NewString(fmt.Sprintf("s%03d", i%50)),
			types.NewInt(int64(i)),
		}
	}
	return rows
}

func mixedSchema() *schema.Schema {
	s := &schema.Schema{}
	for _, n := range []string{"a", "b", "c", "d"} {
		s.Columns = append(s.Columns, schema.Col("t", n, types.KindInt))
	}
	return s
}

// spillCtx returns an execution context with a budget low enough to force
// every materializing operator to disk, plus the resources handle for
// inspection.
func spillCtx(t *testing.T, limit int64) (*Ctx, *govern.Resources) {
	t.Helper()
	res := govern.NewResources(limit, true, t.TempDir(), govern.Inject{})
	t.Cleanup(func() { res.Close() })
	return NewCtx().SetResources(res), res
}

func TestExternalSortBitIdenticalToInMemory(t *testing.T) {
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	sortn := NewSortNode(in, []*eval.Compiled{colFn(0), colFn(2)}, []bool{false, true})

	want := mustExec(t, sortn)

	ctx, res := spillCtx(t, 64<<10)
	got, err := Run(ctx, sortn)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats().Spilled() {
		t.Fatal("sort did not spill under a 64KiB budget")
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatal("external sort output differs from in-memory sort")
	}
}

func TestGraceGroupBitIdenticalToInMemory(t *testing.T) {
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	out := intSchema("a", "c", "sum", "cnt", "avg", "min")
	aggs := []AggSpec{
		{Func: "sum", Arg: colFn(1), OutName: "sum"},
		{Func: "count", OutName: "cnt"},
		{Func: "avg", Arg: colFn(1), OutName: "avg"},
		{Func: "min", Arg: colFn(3), OutName: "min"},
	}
	group := NewGroupNode(in, out, []*eval.Compiled{colFn(0), colFn(2)}, aggs)

	want := mustExec(t, group)

	ctx, res := spillCtx(t, 64<<10)
	got, err := Run(ctx, group)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats().Spilled() {
		t.Fatal("aggregation did not spill under a 64KiB budget")
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatal("grace-hash aggregation output differs from in-memory aggregation")
	}
}

func TestKeylessAggregationStreamsWithoutFiles(t *testing.T) {
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	out := intSchema("sum", "cnt")
	aggs := []AggSpec{
		{Func: "sum", Arg: colFn(1), OutName: "sum"},
		{Func: "count", OutName: "cnt"},
	}
	group := NewGroupNode(in, out, nil, aggs)

	want := mustExec(t, group)

	ctx, res := spillCtx(t, 32<<10)
	got, err := Run(ctx, group)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatal("streaming global aggregation differs from in-memory aggregation")
	}
	if st := res.Stats(); st.SpillRuns != 0 {
		t.Fatalf("global aggregation wrote %d spill runs; the streaming fold needs none", st.SpillRuns)
	}
}

func TestGraceJoinBitIdenticalToInMemory(t *testing.T) {
	lrows := mixedRows(12000)
	rrows := make([]schema.Row, 6000)
	for i := range rrows {
		key := types.NewInt(int64(i % 300))
		if i%37 == 0 {
			key = types.Null // never joins; left rows pad on the left-join path
		}
		rrows[i] = schema.Row{key, types.NewFloat(float64(i) * 0.5)}
	}
	left := NewValuesNode(mixedSchema(), lrows)
	right := NewValuesNode(intSchema("k", "v"), rrows)
	lk := []*eval.Compiled{eval.FromFunc(func(r schema.Row) (types.Value, error) {
		return types.NewInt(r[3].Int() % 300), nil
	})}
	rk := []*eval.Compiled{colFn(0)}
	residual := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		return types.NewBool((r[3].Int()+int64(r[5].Float()))%3 != 0), nil
	})

	for _, kind := range []JoinKind{JoinKindInner, JoinKindLeft} {
		join := NewHashJoinNode(left, right, lk, rk, kind, residual, "t.d%300 = r.k")
		want := mustExec(t, join)

		ctx, res := spillCtx(t, 64<<10)
		got, err := Run(ctx, join)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Stats().Spilled() {
			t.Fatalf("%s join did not spill under a 64KiB budget", kind)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: grace join rows = %d, in-memory = %d", kind, len(got.Rows), len(want.Rows))
		}
		if !reflect.DeepEqual(want.Rows, got.Rows) {
			t.Fatalf("%s: grace-hash join output differs from in-memory join", kind)
		}
	}
}

func TestSpillDisabledFailsWithResourceExhausted(t *testing.T) {
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	sortn := NewSortNode(in, []*eval.Compiled{colFn(0)}, []bool{false})

	res := govern.NewResources(64<<10, false, t.TempDir(), govern.Inject{})
	defer res.Close()
	_, err := Run(NewCtx().SetResources(res), sortn)
	if !errors.Is(err, govern.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	if !res.Exhausted() {
		t.Fatal("resources not marked exhausted")
	}
}

func TestSpillIOErrorFailsQueryCleanly(t *testing.T) {
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	sortn := NewSortNode(in, []*eval.Compiled{colFn(0)}, []bool{false})

	res := govern.NewResources(64<<10, true, t.TempDir(), govern.Inject{SpillErr: true})
	defer res.Close()
	_, err := Run(NewCtx().SetResources(res), sortn)
	if err == nil || !errors.Is(err, govern.ErrResourceExhausted) && err.Error() == "" {
		t.Fatalf("expected an error from the injected spill failure, got %v", err)
	}
	if err == nil {
		t.Fatal("query succeeded despite injected spill I/O error")
	}
}

func TestWorkerPanicBecomesErrInternal(t *testing.T) {
	for _, par := range []int{1, 4} {
		in := NewValuesNode(mixedSchema(), mixedRows(20000))
		pred := eval.FromFunc(func(r schema.Row) (types.Value, error) {
			return types.NewBool(r[0].Int()%2 == 0), nil
		})
		filter := NewFilterNode(in, pred, "a%2=0")

		res := govern.NewResources(0, false, "", govern.Inject{WorkerPanic: true})
		ctx := NewCtx().SetResources(res).SetParallelism(par)
		_, err := Run(ctx, filter)
		if !errors.Is(err, govern.ErrInternal) {
			t.Fatalf("par=%d: err = %v, want ErrInternal", par, err)
		}
		res.Close()

		// The injection is per-query: a fresh execution of the same plan
		// succeeds.
		clean, err := Run(NewCtx(), filter)
		if err != nil {
			t.Fatalf("par=%d: query after panic: %v", par, err)
		}
		if len(clean.Rows) == 0 {
			t.Fatalf("par=%d: no rows after recovery", par)
		}
	}
}

func TestCancelDuringExternalSortRemovesSpillFiles(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var calls atomic.Int64
	// The sort key cancels the query partway through run generation, after
	// several run files exist on disk.
	key := eval.FromFunc(func(r schema.Row) (types.Value, error) {
		if calls.Add(1) == 8000 {
			cancel()
		}
		return r[0], nil
	})
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	sortn := NewSortNode(in, []*eval.Compiled{key}, []bool{false})

	dir := t.TempDir()
	res := govern.NewResources(64<<10, true, dir, govern.Inject{})
	defer res.Close()
	_, err := Run(NewCtxWith(cctx).SetResources(res), sortn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every run file written before the cancellation must already be gone,
	// even before Resources.Close removes the directory itself.
	spillDir, err := res.SpillDir()
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("canceled sort left %d spill files behind", len(ents))
	}
}

func TestExplainAnalyzeReportsSpill(t *testing.T) {
	in := NewValuesNode(mixedSchema(), mixedRows(20000))
	sortn := NewSortNode(in, []*eval.Compiled{colFn(0)}, []bool{false})

	res := govern.NewResources(64<<10, true, t.TempDir(), govern.Inject{})
	defer res.Close()
	ctx := NewAnalyzeCtx().SetResources(res)
	if _, err := Run(ctx, sortn); err != nil {
		t.Fatal(err)
	}
	st := ctx.Stats(sortn)
	if st == nil || st.SpillRuns == 0 {
		t.Fatalf("stats = %+v, want SpillRuns > 0", st)
	}
	out := ExplainAnalyze(sortn, ctx)
	if want := "spilled="; !containsStr(out, want) {
		t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSpillValueCodecRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null,
		types.NewBool(true),
		types.NewBool(false),
		types.NewInt(0),
		types.NewInt(-1),
		types.NewInt(math.MaxInt64),
		types.NewInt(math.MinInt64),
		types.NewFloat(0),
		types.NewFloat(math.Copysign(0, -1)),
		types.NewFloat(math.NaN()),
		types.NewFloat(math.Inf(1)),
		types.NewFloat(1.0 / 3.0),
		types.NewString(""),
		types.NewString("hello"),
		types.NewString("naïve ⊕ spill"),
		types.NewTime(1136214245000000),
		types.NewInterval(-600000000),
	}
	res := govern.NewResources(0, true, t.TempDir(), govern.Inject{})
	defer res.Close()
	sf, err := res.NewSpillFile("codec")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := writeValue(sf, v); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := sf.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Discard()
	for i, want := range vals {
		got, err := readValue(rd)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got.Kind() != want.Kind() {
			t.Fatalf("value %d: kind %s, want %s", i, got.Kind(), want.Kind())
		}
		switch want.Kind() {
		case types.KindFloat:
			if math.Float64bits(got.Float()) != math.Float64bits(want.Float()) {
				t.Fatalf("value %d: float bits differ", i)
			}
		case types.KindString:
			if got.Str() != want.Str() {
				t.Fatalf("value %d: %q != %q", i, got.Str(), want.Str())
			}
		case types.KindNull:
		default:
			if got.Raw() != want.Raw() {
				t.Fatalf("value %d: raw %d != %d", i, got.Raw(), want.Raw())
			}
		}
	}
	if _, err := readValue(rd); err == nil {
		t.Fatal("expected EOF after last value")
	}
}
