package exec

import (
	"bytes"
	"hash/maphash"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/types"
)

// Composite grouping keys — the join build/probe key, DISTINCT and set
// operations' row identity, and the group-by key — are encoded into a
// reused byte buffer and addressed by a 64-bit maphash. The old
// implementation concatenated per-value strings into a fresh string per
// row; the encoder below performs zero allocations per row (the encoding
// is types.Value.AppendGroupKey with a 0x1f separator between columns),
// and collisions never threaten correctness because every bucket entry
// keeps its full encoded key for byte-equality verification.

// hashSeed is the process-wide seed for operator hash tables. Every
// worker of one operator must hash with the same seed so that hash
// partitions (hash mod workers) agree across goroutines.
var hashSeed = maphash.MakeSeed()

// hashKey hashes an encoded key.
func hashKey(b []byte) uint64 { return maphash.Bytes(hashSeed, b) }

// keyEnc builds composite keys in a reusable scratch buffer. One keyEnc
// belongs to one goroutine; parallel operators allocate one per worker.
type keyEnc struct{ buf []byte }

// row encodes every column of r. The returned slice aliases the scratch
// buffer: it is valid until the next call on this encoder.
func (k *keyEnc) row(r schema.Row) []byte {
	k.buf = k.buf[:0]
	for _, v := range r {
		k.buf = v.AppendGroupKey(k.buf)
		k.buf = append(k.buf, 0x1f)
	}
	return k.buf
}

// funcs evaluates the key expressions over row into the scratch buffer.
// null reports whether any key evaluated to NULL (join keys never match
// on NULL; group-by keys treat NULL as a regular value — the caller
// decides). The returned slice is valid until the next call.
func (k *keyEnc) funcs(fns []*eval.Compiled, row schema.Row) (key []byte, null bool, err error) {
	k.buf = k.buf[:0]
	for _, f := range fns {
		v, err := f.Eval(row)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			null = true
		}
		k.buf = v.AppendGroupKey(k.buf)
		k.buf = append(k.buf, 0x1f)
	}
	return k.buf, null, nil
}

// cols is the batch-path counterpart of funcs: it encodes row i's key
// from column vectors the vector kernels already filled (cols[j][i] is
// key expression j's value for row i). Same encoding, same NULL report,
// same scratch-buffer aliasing rules.
func (k *keyEnc) cols(cols [][]types.Value, i int) (key []byte, null bool) {
	k.buf = k.buf[:0]
	for _, c := range cols {
		v := c[i]
		if v.IsNull() {
			null = true
		}
		k.buf = v.AppendGroupKey(k.buf)
		k.buf = append(k.buf, 0x1f)
	}
	return k.buf, null
}

// keyTable is a hash table from encoded key bytes to a value of type T.
// Buckets are keyed by the full 64-bit maphash; entries within a bucket
// are verified by byte equality, so hashing is an accelerator, never a
// correctness risk.
type keyTable[T any] struct {
	buckets map[uint64][]keyEntry[T]
	n       int
}

type keyEntry[T any] struct {
	key []byte
	val T
}

func newKeyTable[T any](capacity int) *keyTable[T] {
	return &keyTable[T]{buckets: make(map[uint64][]keyEntry[T], capacity)}
}

// len reports the number of distinct keys stored.
func (t *keyTable[T]) len() int { return t.n }

// lookup returns a pointer to the value stored under key, or nil. The
// pointer is invalidated by the next insert into the same bucket, so
// callers must use it before inserting again.
func (t *keyTable[T]) lookup(h uint64, key []byte) *T {
	b := t.buckets[h]
	for i := range b {
		if bytes.Equal(b[i].key, key) {
			return &b[i].val
		}
	}
	return nil
}

// insert stores val under a key that must not already be present. The
// key bytes are retained as-is: pass a stable slice (insertCopy copies a
// scratch-buffer key first).
func (t *keyTable[T]) insert(h uint64, key []byte, val T) {
	t.buckets[h] = append(t.buckets[h], keyEntry[T]{key: key, val: val})
	t.n++
}

// insertCopy is insert for keys that alias a reused scratch buffer.
func (t *keyTable[T]) insertCopy(h uint64, key []byte, val T) {
	t.insert(h, append([]byte(nil), key...), val)
}

// rowSet is the DISTINCT/set-operation membership structure.
type rowSet struct{ t *keyTable[struct{}] }

func newRowSet(capacity int) rowSet {
	return rowSet{t: newKeyTable[struct{}](capacity)}
}

// add inserts the encoded row key and reports whether it was new.
func (s rowSet) add(key []byte) bool {
	h := hashKey(key)
	if s.t.lookup(h, key) != nil {
		return false
	}
	s.t.insertCopy(h, key, struct{}{})
	return true
}

// contains reports membership without inserting.
func (s rowSet) contains(key []byte) bool {
	return s.t.lookup(hashKey(key), key) != nil
}
