// Morsel-driven intra-query parallelism (in the spirit of Leis et al.,
// SIGMOD 2014): operator hot loops split their input into fixed-size
// morsels that a pool of workers claims from a shared counter, so load
// balances across cores without any static partitioning decision. Every
// parallel operator preserves its serial output exactly — workers write
// to disjoint, position-addressed state (per-morsel output slices
// concatenated in morsel order, or per-index slots), hash partitions are
// folded in global input order, and parallel sorts merge stably — so a
// query's result is bit-identical at Parallelism=1 and Parallelism=N.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/govern"
	"repro/internal/schema"
)

// Parallelism is the default worker-pool width for intra-query
// parallelism: morsel-parallel scans, filters, projections, join
// build/probe, sort, aggregation, window partitions, and concurrent
// execution of independent plan children. Set to 1 to force serial
// execution process-wide; individual executions override it with
// Ctx.SetParallelism (the repro.WithParallelism query option).
var Parallelism = runtime.NumCPU()

const (
	// MorselSize is the number of rows in one unit of parallel work. A
	// power of two aligned with cancelCheckInterval: big enough that
	// claiming a morsel (one atomic add) never shows in profiles, small
	// enough that skewed morsels don't leave workers idle.
	MorselSize = 4096

	// ParallelThreshold is the smallest input an operator fans out for;
	// below it goroutine startup would cost more than it saves.
	ParallelThreshold = 2 * MorselSize
)

// workersFor returns how many goroutines to use over n rows: 1 for small
// inputs, otherwise the context's parallelism capped by the morsel count.
func (c *Ctx) workersFor(n int) int {
	w := c.par
	if w <= 1 || n < ParallelThreshold {
		return 1
	}
	if m := (n + MorselSize - 1) / MorselSize; w > m {
		w = m
	}
	return w
}

// morselCount returns how many morsels parallelFor will dispatch for n
// rows on the given worker count; callers size per-morsel output slots
// with it. Serial execution runs as a single morsel.
func morselCount(n, workers int) int {
	if workers <= 1 || n == 0 {
		return 1
	}
	return (n + MorselSize - 1) / MorselSize
}

// parallelFor processes [0,n) in morsels claimed off a shared atomic
// counter by `workers` goroutines. fn(worker, morsel, lo, hi) must
// confine its writes to state owned by its worker index or morsel index
// (or to disjoint row positions) — that is what keeps parallel execution
// deterministic. Workers poll the context between morsels, and fn should
// Tick inside long loops; the first error (or the context's) aborts the
// whole loop. With workers <= 1 it degenerates to fn(0, 0, 0, n) on the
// calling goroutine.
func (c *Ctx) parallelFor(n, workers int, fn func(worker, morsel, lo, hi int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		c.res.MaybePanic()
		return fn(0, 0, 0, n)
	}
	morsels := morselCount(n, workers)
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panic in one morsel (a bug, or the WorkerPanic injection)
			// becomes this query's error instead of crashing the process;
			// sibling workers drain normally and the pool joins cleanly.
			defer func() {
				if rec := recover(); rec != nil {
					errs[w] = govern.Internalize(rec)
				}
			}()
			for {
				if err := c.Canceled(); err != nil {
					errs[w] = err
					return
				}
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				c.res.MaybePanic()
				lo := m * MorselSize
				hi := lo + MorselSize
				if hi > n {
					hi = n
				}
				if err := fn(w, m, lo, hi); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstError(errs)
}

// parallelMorsels dispatches nm pre-built work units — segment-local
// scan morsels that never straddle a segment boundary — to workers
// claiming indices off a shared counter. fn(worker, m) processes morsel
// m under the same rules as parallelFor's fn: writes confined to
// worker- or morsel-owned state, first error (or cancellation) aborts.
// With workers <= 1 the morsels run in order on the calling goroutine.
func (c *Ctx) parallelMorsels(nm, workers int, fn func(worker, m int) error) error {
	if nm == 0 {
		return nil
	}
	if workers <= 1 {
		c.res.MaybePanic()
		for m := 0; m < nm; m++ {
			if err := c.Canceled(); err != nil {
				return err
			}
			if err := fn(0, m); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[w] = govern.Internalize(rec)
				}
			}()
			for {
				if err := c.Canceled(); err != nil {
					errs[w] = err
					return
				}
				m := int(next.Add(1)) - 1
				if m >= nm {
					return
				}
				c.res.MaybePanic()
				if err := fn(w, m); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// concatMorsels flattens per-morsel output slices in morsel order — the
// step that restores the serial row order after a parallel filter or
// probe.
func concatMorsels(outs [][]schema.Row) []schema.Row {
	if len(outs) == 1 {
		return outs[0]
	}
	size := 0
	for _, o := range outs {
		size += len(o)
	}
	flat := make([]schema.Row, 0, size)
	for _, o := range outs {
		flat = append(flat, o...)
	}
	return flat
}

// runPair executes two independent plan children, concurrently when the
// context allows more than one worker — the two inputs of a join or set
// operation share no state, so their subtrees (each possibly fanning out
// its own morsel workers) overlap freely; the scheduler multiplexes the
// combined goroutines onto GOMAXPROCS threads. Run's inflight tracking
// makes a subtree shared between both sides execute exactly once.
func runPair(ctx *Ctx, a, b Node) (*Result, *Result, error) {
	if ctx.par <= 1 {
		ra, err := Run(ctx, a)
		if err != nil {
			return nil, nil, err
		}
		rb, err := Run(ctx, b)
		if err != nil {
			return nil, nil, err
		}
		return ra, rb, nil
	}
	var (
		rb   *Result
		errB error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		defer func() {
			if rec := recover(); rec != nil {
				rb, errB = nil, govern.Internalize(rec)
			}
		}()
		rb, errB = Run(ctx, b)
	}()
	ra, errA := Run(ctx, a)
	<-done
	if errA != nil {
		return nil, nil, errA
	}
	if errB != nil {
		return nil, nil, errB
	}
	return ra, rb, nil
}
