// Package exec implements the physical query operators of the embedded
// engine: scans (sequential and index-range), filters, projections, sorts,
// hash and nested-loop joins, hash aggregation (including COUNT(DISTINCT)),
// set operations, and the SQL/OLAP window operator with ROWS and RANGE
// frames that the paper's cleansing templates compile into.
//
// Operators are batch-at-a-time: Execute materializes the full result.
// At the scales this reproduction targets (hundreds of thousands to a few
// million reads in memory) this is simpler and faster than an iterator
// protocol, and it keeps per-operator timing honest in benchmarks.
//
// Within a query, operators are morsel-parallel (see parallel.go): hot
// loops fan out over a worker pool sized by the Parallelism knob while
// preserving the exact serial output, and independent plan children (the
// two inputs of a join or set operation) execute concurrently.
package exec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Result is a materialized relation.
type Result struct {
	Schema *schema.Schema
	Rows   []schema.Row
}

// Ctx carries per-execution state: the governing context.Context (for
// cancellation and deadlines), the per-query parallelism cap, the result
// cache that lets shared subtrees (CTEs referenced twice, IN-subqueries)
// run once per statement, and optional per-operator runtime statistics.
// The cache and stats maps are mutex-guarded because independent plan
// children execute concurrently (see runPair).
type Ctx struct {
	ctx context.Context
	// par caps intra-query parallelism (worker-pool width per operator
	// and concurrent children); defaults to the Parallelism package knob.
	par int
	// vec enables batch (vectorized) expression evaluation; defaults to
	// the Vectorize package knob.
	vec bool
	// res governs this execution's memory budget, spill files, and fault
	// injection; never nil (defaults to an unbounded handle).
	res *govern.Resources
	// buildReuse allows CacheBuild hash joins to reuse build tables
	// cached under epoch buildEpoch; see Ctx.EnableBuildReuse.
	buildReuse bool
	buildEpoch uint64

	mu    sync.Mutex
	cache map[Node]*inflight
	// stats, when non-nil, collects per-operator runtime statistics —
	// rows, elapsed time, worker fan-out, eval mode, spill activity — in
	// one map. This is the engine's single stats path: EXPLAIN ANALYZE,
	// query traces, the metrics registry, and the slow-query log all read
	// the NodeStats recorded here; nothing else counts operator work.
	stats map[Node]*NodeStats
}

// inflight is one node's execution slot: the sync.Once makes a subtree
// shared between concurrently-executing plan children run exactly once,
// with late arrivals blocking until the first execution completes.
type inflight struct {
	once sync.Once
	res  *Result
	err  error
}

// NodeStats is the measured behaviour of one operator in one execution.
type NodeStats struct {
	// Rows is the actual output cardinality.
	Rows int
	// Start is when the operator's Execute began.
	Start time.Time
	// Elapsed is cumulative wall time of Execute, including children.
	Elapsed time.Duration
	// Hits counts cache hits beyond the first execution (shared CTEs).
	Hits int
	// Workers is the operator's parallel fan-out; 0 or 1 means it ran
	// serially (small input, or Parallelism=1).
	Workers int
	// EvalMode is "vector" when the operator evaluated its expressions
	// through the batch kernels, "row" for the row-at-a-time path, and
	// empty for operators that evaluate no expressions.
	EvalMode string
	// Batches counts vector-kernel chunks the operator processed
	// (vector mode only).
	Batches int
	// SpillRuns counts external runs / grace partitions this operator
	// wrote to temp files (0 = stayed in memory); SpillBytes is the data
	// volume that went through disk.
	SpillRuns  int
	SpillBytes int64
	// Segments is the number of storage segments a scan considered;
	// Pruned is how many of those its zone maps eliminated without
	// reading. Both zero for non-scan operators and unfused scans.
	Segments int
	Pruned   int
}

// NewCtx returns a fresh execution context that is never canceled.
func NewCtx() *Ctx { return NewCtxWith(context.Background()) }

// NewCtxWith returns a fresh execution context governed by ctx: operators
// poll it cooperatively (every cancelCheckInterval rows in their hot
// loops) and abort with ctx.Err() once it is done.
func NewCtxWith(ctx context.Context) *Ctx {
	return &Ctx{ctx: ctx, par: defaultParallelism(), vec: Vectorize, res: govern.Unbounded(), cache: map[Node]*inflight{}}
}

// NewAnalyzeCtx returns a context that records per-operator statistics.
func NewAnalyzeCtx() *Ctx { return NewAnalyzeCtxWith(context.Background()) }

// NewAnalyzeCtxWith is NewAnalyzeCtx governed by a context.Context.
func NewAnalyzeCtxWith(ctx context.Context) *Ctx {
	return NewCtxWith(ctx).EnableStats()
}

// EnableStats switches on per-operator statistics collection for this
// execution. The serving layer enables it for every telemetry-observed
// query (not just EXPLAIN ANALYZE): the same NodeStats feed the analyze
// printout, the trace span tree, and the per-operator metric counters.
// It returns c for chaining and must be called before Run.
func (c *Ctx) EnableStats() *Ctx {
	if c.stats == nil {
		c.stats = map[Node]*NodeStats{}
	}
	return c
}

// CollectingStats reports whether this execution records per-operator
// statistics.
func (c *Ctx) CollectingStats() bool { return c.stats != nil }

// StatsSnapshot returns the per-operator statistics recorded so far, one
// entry per distinct plan node (shared subtrees appear once, however
// many tree positions reference them — iterating this map never double
// counts an operator's rows). The returned map is a copy; the NodeStats
// values are shared and must not be mutated.
func (c *Ctx) StatsSnapshot() map[Node]*NodeStats {
	if c.stats == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Node]*NodeStats, len(c.stats))
	for n, st := range c.stats {
		out[n] = st
	}
	return out
}

// SetParallelism caps intra-query parallelism for executions under this
// context; n < 1 resets to the package-level Parallelism default. It
// returns c for chaining and must be called before Run.
func (c *Ctx) SetParallelism(n int) *Ctx {
	if n < 1 {
		n = defaultParallelism()
	}
	c.par = n
	return c
}

// SetVectorize switches batch expression evaluation on or off for
// executions under this context. Results are bit-identical either way.
// It returns c for chaining and must be called before Run.
func (c *Ctx) SetVectorize(on bool) *Ctx {
	c.vec = on
	return c
}

// SetResources attaches the query's governance handle — memory budget,
// spill management, fault injection. nil keeps the default unbounded
// handle. It returns c for chaining and must be called before Run.
func (c *Ctx) SetResources(r *govern.Resources) *Ctx {
	if r != nil {
		c.res = r
	}
	return c
}

// EnableBuildReuse lets hash joins the planner marked CacheBuild reuse
// their build-side table across executions of the same plan node, as
// long as the catalog epoch still matches the one the table was built
// under — prepared statements pass the current epoch per run, so any
// catalog mutation (data load, index build, ANALYZE) invalidates cached
// builds exactly like it invalidates plan-cache entries. One-shot
// queries leave it off. It returns c for chaining and must be called
// before Run.
func (c *Ctx) EnableBuildReuse(epoch uint64) *Ctx {
	c.buildReuse = true
	c.buildEpoch = epoch
	return c
}

// Resources returns the execution's governance handle (never nil).
func (c *Ctx) Resources() *govern.Resources { return c.res }

func defaultParallelism() int {
	if Parallelism < 1 {
		return 1
	}
	return Parallelism
}

// Stats returns the recorded statistics for a node, or nil.
func (c *Ctx) Stats(n Node) *NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats[n]
}

// statLocked returns (creating if needed) the node's stats entry. The
// caller must hold c.mu and have checked c.stats != nil. Notes recorded
// mid-Execute land in the same entry Run finalizes with rows and timing,
// so each operator's numbers exist exactly once.
func (c *Ctx) statLocked(n Node) *NodeStats {
	st := c.stats[n]
	if st == nil {
		st = &NodeStats{}
		c.stats[n] = st
	}
	return st
}

// noteWorkers records an operator's actual fan-out; serial execution is
// not recorded.
func (c *Ctx) noteWorkers(n Node, workers int) {
	if c.stats == nil || workers <= 1 {
		return
	}
	c.mu.Lock()
	if st := c.statLocked(n); workers > st.Workers {
		st.Workers = workers
	}
	c.mu.Unlock()
}

// noteStreamRows publishes a streaming operator's running row count, so
// a live stats snapshot (the active-query registry) shows progress while
// the stream is still being consumed. The stream's cleanup overwrites
// the entry with the authoritative final numbers. Called once per output
// batch, never per row.
func (c *Ctx) noteStreamRows(n Node, rows int, start time.Time) {
	if c.stats == nil {
		return
	}
	c.mu.Lock()
	st := c.statLocked(n)
	st.Rows = rows
	if st.Start.IsZero() {
		st.Start = start
	}
	c.mu.Unlock()
}

// noteSpill records an operator's spill activity: always on the query's
// cumulative counters, and per-operator when stats are being collected.
func (c *Ctx) noteSpill(n Node, runs int, bytes int64) {
	c.res.NoteSpill(runs, bytes)
	if c.stats == nil {
		return
	}
	c.mu.Lock()
	st := c.statLocked(n)
	st.SpillRuns += runs
	st.SpillBytes += bytes
	c.mu.Unlock()
}

// noteEval records whether an operator evaluated its expressions through
// the vector kernels and over how many chunks. An operator calls it at
// most once per execution; the recorded mode replaces any earlier one.
func (c *Ctx) noteEval(n Node, vectorized bool, rows int) {
	if c.stats == nil {
		return
	}
	mode, batches := "row", 0
	if vectorized {
		mode, batches = "vector", batchCount(rows)
	}
	c.mu.Lock()
	st := c.statLocked(n)
	st.EvalMode, st.Batches = mode, batches
	c.mu.Unlock()
}

// noteSegments records a fused scan's zone-map outcome: how many storage
// segments it considered and how many the zone maps skipped outright.
func (c *Ctx) noteSegments(n Node, segments, pruned int) {
	if c.stats == nil {
		return
	}
	c.mu.Lock()
	st := c.statLocked(n)
	st.Segments, st.Pruned = segments, pruned
	c.mu.Unlock()
}

// cancelCheckInterval is how many rows an operator hot loop processes
// between context polls. A power of two so the tick test compiles to a
// mask; small enough that a canceled query stops within microseconds of
// work, large enough that the poll never shows up in profiles.
const cancelCheckInterval = 4096

// Canceled returns the governing context's error, if it is done.
func (c *Ctx) Canceled() error { return c.ctx.Err() }

// Tick is the cooperative cancellation check for operator hot loops: it
// polls the governing context every cancelCheckInterval iterations (i is
// the loop counter) and reports its error once done.
func (c *Ctx) Tick(i int) error {
	if i&(cancelCheckInterval-1) != 0 {
		return nil
	}
	return c.ctx.Err()
}

// OrderCol describes one key of a physical ordering property: the ordinal
// of a column in the node's output schema plus direction.
type OrderCol struct {
	Col  int
	Desc bool
}

// Node is a physical operator.
type Node interface {
	// Schema is the output shape.
	Schema() *schema.Schema
	// Children returns input operators, for EXPLAIN.
	Children() []Node
	// Execute materializes the output. Implementations must route child
	// execution through Run so shared subtrees are cached.
	Execute(ctx *Ctx) (*Result, error)
	// Label names the operator for EXPLAIN output.
	Label() string

	// EstRows and EstCost are the planner's estimates (cumulative cost).
	EstRows() float64
	EstCost() float64
	// Ordering is the output ordering the operator guarantees, outermost
	// key first; nil means unordered.
	Ordering() []OrderCol
}

// Run executes a node through the context cache. Nodes shared between
// plan subtrees (CTEs) therefore execute exactly once per statement,
// even when two plan children racing through runPair reach the shared
// subtree at the same time — the second caller blocks on the first
// execution and reuses its result.
func Run(ctx *Ctx, n Node) (*Result, error) {
	ctx.mu.Lock()
	f, hit := ctx.cache[n]
	if !hit {
		f = &inflight{}
		ctx.cache[n] = f
	}
	ctx.mu.Unlock()
	f.once.Do(func() {
		// Convert panics escaping any operator (serial paths included; the
		// worker-pool goroutines carry their own recover) into a per-query
		// ErrInternal instead of crashing the process.
		defer func() {
			if rec := recover(); rec != nil {
				f.res, f.err = nil, govern.Internalize(rec)
			}
		}()
		if err := ctx.Canceled(); err != nil {
			f.err = err
			return
		}
		if d := ctx.res.SlowOp(); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.ctx.Done():
				f.err = ctx.ctx.Err()
				return
			}
		}
		var start time.Time
		if ctx.stats != nil {
			start = time.Now()
		}
		f.res, f.err = n.Execute(ctx)
		if ctx.stats != nil && f.err == nil {
			elapsed := time.Since(start)
			ctx.mu.Lock()
			st := ctx.statLocked(n)
			st.Rows, st.Start, st.Elapsed = len(f.res.Rows), start, elapsed
			ctx.mu.Unlock()
		}
	})
	if f.err != nil {
		return nil, f.err
	}
	if hit && ctx.stats != nil {
		ctx.mu.Lock()
		if st := ctx.stats[n]; st != nil {
			st.Hits++
		}
		ctx.mu.Unlock()
	}
	return f.res, nil
}

// base carries the estimate/ordering fields every operator shares. The
// planner fills these in when it builds the tree.
type base struct {
	schema   *schema.Schema
	estRows  float64
	estCost  float64
	estMem   float64
	ordering []OrderCol
}

func (b *base) Schema() *schema.Schema { return b.schema }
func (b *base) EstRows() float64       { return b.estRows }
func (b *base) EstCost() float64       { return b.estCost }
func (b *base) Ordering() []OrderCol   { return b.ordering }

// SetEstimates records planner estimates on any operator embedding base.
type estimateSetter interface {
	setEstimates(rows, cost float64)
	setOrdering(o []OrderCol)
	setMemEstimate(bytes float64)
	memEstimate() float64
}

func (b *base) setEstimates(rows, cost float64) { b.estRows, b.estCost = rows, cost }
func (b *base) setOrdering(o []OrderCol)        { b.ordering = o }
func (b *base) setMemEstimate(bytes float64)    { b.estMem = bytes }
func (b *base) memEstimate() float64            { return b.estMem }

// SetEstimates assigns cardinality and cost estimates to a node built by
// the planner.
func SetEstimates(n Node, rows, cost float64) {
	if s, ok := n.(estimateSetter); ok {
		s.setEstimates(rows, cost)
	}
}

// SetOrdering assigns the guaranteed output ordering of a node.
func SetOrdering(n Node, o []OrderCol) {
	if s, ok := n.(estimateSetter); ok {
		s.setOrdering(o)
	}
}

// SetMemEstimate records the planner's estimate of an operator's peak
// materialized state in bytes (hash tables, sort keys, output buffers).
// Zero means "not a materializing operator" and is not printed by EXPLAIN.
func SetMemEstimate(n Node, bytes float64) {
	if s, ok := n.(estimateSetter); ok {
		s.setMemEstimate(bytes)
	}
}

// EstMem returns the planner's memory estimate for a node (0 if none).
func EstMem(n Node) float64 {
	if s, ok := n.(estimateSetter); ok {
		return s.memEstimate()
	}
	return 0
}

// ---- Scan ----

// ScanNode reads a base table, optionally through a sorted index range,
// and optionally with a filter predicate fused into the scan. A fused
// predicate evaluates directly over the columnar segment vectors in
// vectorized mode — no row materialization for non-matching rows — with
// per-segment zone maps (Zone) skipping segments that cannot contain a
// match.
type ScanNode struct {
	base
	Table *storage.Table
	// IndexOrd selects an index scan on that column ordinal when >= 0.
	IndexOrd int
	Bounds   storage.Bounds
	// Pred, when non-nil, is a filter fused into a sequential scan: only
	// rows satisfying it are emitted. PredDesc labels it in EXPLAIN.
	Pred     *eval.Compiled
	PredDesc string
	// Zone holds range summaries implied by Pred's conjuncts. Segments
	// whose zone maps cannot satisfy all of them are skipped — in
	// vectorized mode only; the row path (WithRowEval) reads every
	// segment and is the pruning correctness baseline.
	Zone []storage.ZonePred
}

// NewScanNode builds a scan. alias qualifies the output schema.
func NewScanNode(t *storage.Table, alias string) *ScanNode {
	s := &ScanNode{Table: t, IndexOrd: -1}
	s.schema = t.Schema.WithQualifier(alias)
	return s
}

// Label implements Node.
func (s *ScanNode) Label() string {
	if s.IndexOrd >= 0 {
		return fmt.Sprintf("IndexScan(%s.%s)", s.Table.Name, s.Table.Schema.Columns[s.IndexOrd].Name)
	}
	if s.Pred != nil {
		return fmt.Sprintf("Scan(%s | %s)", s.Table.Name, s.PredDesc)
	}
	return fmt.Sprintf("Scan(%s)", s.Table.Name)
}

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// Execute implements Node.
func (s *ScanNode) Execute(ctx *Ctx) (*Result, error) {
	if s.IndexOrd >= 0 {
		ix := s.Table.IndexByOrdinal(s.IndexOrd)
		if ix == nil {
			return nil, fmt.Errorf("exec: plan expects index on %s column %d but none exists", s.Table.Name, s.IndexOrd)
		}
		ids := ix.Scan(s.Bounds)
		if err := ctx.reserveOrCharge(int64(len(ids)) * rowHdrBytes); err != nil {
			return nil, err
		}
		rows := make([]schema.Row, len(ids))
		// The gather loop writes disjoint positions, so morsels of the
		// matched-id range fan out across workers.
		workers := ctx.workersFor(len(ids))
		ctx.noteWorkers(s, workers)
		err := ctx.parallelFor(len(ids), workers, func(_, _, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := ctx.Tick(i - lo); err != nil {
					return err
				}
				rows[i] = s.Table.RowAt(int(ids[i]))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return &Result{Schema: s.schema, Rows: rows}, nil
	}
	if s.Pred != nil {
		return s.executeFiltered(ctx)
	}
	// Sequential scan shares the table's (memoized) row materialization;
	// downstream operators never mutate input rows.
	return &Result{Schema: s.schema, Rows: s.Table.AllRows()}, nil
}

// scanMorsel is one segment-local unit of fused-scan work; it never
// straddles a segment boundary, so in vectorized mode each morsel
// evaluates the predicate over one window of its segment's column
// vectors.
type scanMorsel struct {
	seg    *storage.Segment
	lo, hi int
}

// planFilteredMorsels applies zone-map pruning (vectorized mode only;
// the row path reads every segment and is the pruning correctness
// baseline) and splits the surviving segments into segment-local
// morsels, recording the pruning outcome. It returns the morsels and
// their total row count. Shared by the materializing executeFiltered
// and the streaming scanSource.
func (s *ScanNode) planFilteredMorsels(ctx *Ctx, vec bool) ([]scanMorsel, int) {
	segs := s.Table.Segments()
	considered := len(segs)
	pruned := 0
	if vec && len(s.Zone) > 0 {
		kept := make([]*storage.Segment, 0, len(segs))
		for _, seg := range segs {
			if seg.CanMatchAll(s.Zone) {
				kept = append(kept, seg)
			} else {
				pruned++
			}
		}
		segs = kept
	}
	ctx.noteSegments(s, considered, pruned)
	total := 0
	for _, seg := range segs {
		total += seg.Len()
	}
	morsels := make([]scanMorsel, 0, total/MorselSize+len(segs))
	for _, seg := range segs {
		for lo := 0; lo < seg.Len(); lo += MorselSize {
			hi := min(lo+MorselSize, seg.Len())
			morsels = append(morsels, scanMorsel{seg: seg, lo: lo, hi: hi})
		}
	}
	return morsels, total
}

// filterMorsel evaluates the fused predicate over one morsel, returning
// the matching rows (references into the segment's shared row cache) in
// position order. Any kernel failure, and the entire row-eval mode,
// fall back to materialized rows with the same batch/row machinery
// FilterNode uses, so results and errors are byte-identical across
// modes and parallelism levels.
func (s *ScanNode) filterMorsel(ctx *Ctx, mo scanMorsel, vec bool) ([]schema.Row, error) {
	var out []schema.Row
	var sel []int
	if vec && mo.seg.Sealed() {
		var ok bool
		sel, ok = eval.TryPredicateCols(s.Pred, mo.seg.Cols(), mo.lo, mo.hi-mo.lo, sel[:0])
		if ok {
			if len(sel) > 0 {
				rows := mo.seg.Rows()
				out = make([]schema.Row, 0, len(sel))
				for _, i := range sel {
					out = append(out, rows[mo.lo+i])
				}
			}
			return out, nil
		}
	}
	rows := mo.seg.Rows()
	if vec {
		// Row-form tail, or a kernel error: EvalPredicateBatch's own
		// row-path fallback restores exact serial error semantics.
		sel, err := eval.EvalPredicateBatch(s.Pred, rows[mo.lo:mo.hi], nil, sel[:0])
		if err != nil {
			return nil, err
		}
		for _, i := range sel {
			out = append(out, rows[mo.lo+i])
		}
		return out, nil
	}
	for i := mo.lo; i < mo.hi; i++ {
		if err := ctx.Tick(i - mo.lo); err != nil {
			return nil, err
		}
		keep, err := eval.EvalPredicate(s.Pred, rows[i])
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, rows[i])
		}
	}
	return out, nil
}

// executeFiltered runs a sequential scan with the fused predicate: zone
// maps prune whole segments, then segment-local morsels evaluate in
// parallel into per-morsel output slices that concatenate in morsel
// order.
func (s *ScanNode) executeFiltered(ctx *Ctx) (*Result, error) {
	vec := ctx.useVector(s.Pred)
	morsels, total := s.planFilteredMorsels(ctx, vec)
	if err := ctx.reserveOrCharge(int64(total) * rowHdrBytes); err != nil {
		return nil, err
	}
	workers := min(ctx.workersFor(total), len(morsels))
	ctx.noteWorkers(s, workers)
	ctx.noteEval(s, vec, total)
	outs := make([][]schema.Row, len(morsels))
	err := ctx.parallelMorsels(len(morsels), workers, func(_, m int) error {
		out, err := s.filterMorsel(ctx, morsels[m], vec)
		if err != nil {
			return err
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Schema: s.schema, Rows: concatMorsels(outs)}, nil
}

// ValuesNode serves literal rows; used for planned constants and tests.
type ValuesNode struct {
	base
	RowsData []schema.Row
}

// NewValuesNode wraps literal rows in a node.
func NewValuesNode(s *schema.Schema, rows []schema.Row) *ValuesNode {
	n := &ValuesNode{RowsData: rows}
	n.schema = s
	return n
}

// Label implements Node.
func (n *ValuesNode) Label() string { return fmt.Sprintf("Values(%d)", len(n.RowsData)) }

// Children implements Node.
func (n *ValuesNode) Children() []Node { return nil }

// Execute implements Node.
func (n *ValuesNode) Execute(*Ctx) (*Result, error) {
	return &Result{Schema: n.schema, Rows: n.RowsData}, nil
}

// RequalifyNode renames the qualifier of its child's schema without
// touching rows; it gives a shared CTE body a per-reference alias.
type RequalifyNode struct {
	base
	Input Node
}

// NewRequalifyNode wraps child with a new schema qualifier.
func NewRequalifyNode(child Node, alias string) *RequalifyNode {
	n := &RequalifyNode{Input: child}
	n.schema = child.Schema().WithQualifier(alias)
	n.estRows = child.EstRows()
	n.estCost = child.EstCost()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *RequalifyNode) Label() string { return "Requalify" }

// Children implements Node.
func (n *RequalifyNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *RequalifyNode) Execute(ctx *Ctx) (*Result, error) {
	r, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: n.schema, Rows: r.Rows}, nil
}
