// Package exec implements the physical query operators of the embedded
// engine: scans (sequential and index-range), filters, projections, sorts,
// hash and nested-loop joins, hash aggregation (including COUNT(DISTINCT)),
// set operations, and the SQL/OLAP window operator with ROWS and RANGE
// frames that the paper's cleansing templates compile into.
//
// Operators are batch-at-a-time: Execute materializes the full result.
// At the scales this reproduction targets (hundreds of thousands to a few
// million reads in memory) this is simpler and faster than an iterator
// protocol, and it keeps per-operator timing honest in benchmarks.
package exec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/schema"
	"repro/internal/storage"
)

// Result is a materialized relation.
type Result struct {
	Schema *schema.Schema
	Rows   []schema.Row
}

// Ctx carries per-execution state: the governing context.Context (for
// cancellation and deadlines), the result cache that lets shared subtrees
// (CTEs referenced twice, IN-subqueries) run once per statement, and
// optional per-operator runtime statistics.
type Ctx struct {
	ctx   context.Context
	cache map[Node]*Result
	// stats, when non-nil, collects actual rows and elapsed time per
	// operator (EXPLAIN ANALYZE).
	stats map[Node]*NodeStats
}

// NodeStats is the measured behaviour of one operator in one execution.
type NodeStats struct {
	// Rows is the actual output cardinality.
	Rows int
	// Elapsed is cumulative wall time of Execute, including children.
	Elapsed time.Duration
	// Hits counts cache hits beyond the first execution (shared CTEs).
	Hits int
}

// NewCtx returns a fresh execution context that is never canceled.
func NewCtx() *Ctx { return NewCtxWith(context.Background()) }

// NewCtxWith returns a fresh execution context governed by ctx: operators
// poll it cooperatively (every cancelCheckInterval rows in their hot
// loops) and abort with ctx.Err() once it is done.
func NewCtxWith(ctx context.Context) *Ctx {
	return &Ctx{ctx: ctx, cache: map[Node]*Result{}}
}

// NewAnalyzeCtx returns a context that records per-operator statistics.
func NewAnalyzeCtx() *Ctx { return NewAnalyzeCtxWith(context.Background()) }

// NewAnalyzeCtxWith is NewAnalyzeCtx governed by a context.Context.
func NewAnalyzeCtxWith(ctx context.Context) *Ctx {
	return &Ctx{ctx: ctx, cache: map[Node]*Result{}, stats: map[Node]*NodeStats{}}
}

// Stats returns the recorded statistics for a node, or nil.
func (c *Ctx) Stats(n Node) *NodeStats { return c.stats[n] }

// cancelCheckInterval is how many rows an operator hot loop processes
// between context polls. A power of two so the tick test compiles to a
// mask; small enough that a canceled query stops within microseconds of
// work, large enough that the poll never shows up in profiles.
const cancelCheckInterval = 4096

// Canceled returns the governing context's error, if it is done.
func (c *Ctx) Canceled() error { return c.ctx.Err() }

// Tick is the cooperative cancellation check for operator hot loops: it
// polls the governing context every cancelCheckInterval iterations (i is
// the loop counter) and reports its error once done.
func (c *Ctx) Tick(i int) error {
	if i&(cancelCheckInterval-1) != 0 {
		return nil
	}
	return c.ctx.Err()
}

// OrderCol describes one key of a physical ordering property: the ordinal
// of a column in the node's output schema plus direction.
type OrderCol struct {
	Col  int
	Desc bool
}

// Node is a physical operator.
type Node interface {
	// Schema is the output shape.
	Schema() *schema.Schema
	// Children returns input operators, for EXPLAIN.
	Children() []Node
	// Execute materializes the output. Implementations must route child
	// execution through Run so shared subtrees are cached.
	Execute(ctx *Ctx) (*Result, error)
	// Label names the operator for EXPLAIN output.
	Label() string

	// EstRows and EstCost are the planner's estimates (cumulative cost).
	EstRows() float64
	EstCost() float64
	// Ordering is the output ordering the operator guarantees, outermost
	// key first; nil means unordered.
	Ordering() []OrderCol
}

// Run executes a node through the context cache. Nodes shared between
// plan subtrees (CTEs) therefore execute exactly once per statement.
func Run(ctx *Ctx, n Node) (*Result, error) {
	if r, ok := ctx.cache[n]; ok {
		if st := ctx.stats[n]; st != nil {
			st.Hits++
		}
		return r, nil
	}
	if err := ctx.Canceled(); err != nil {
		return nil, err
	}
	var start time.Time
	if ctx.stats != nil {
		start = time.Now()
	}
	r, err := n.Execute(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.stats != nil {
		ctx.stats[n] = &NodeStats{Rows: len(r.Rows), Elapsed: time.Since(start)}
	}
	ctx.cache[n] = r
	return r, nil
}

// base carries the estimate/ordering fields every operator shares. The
// planner fills these in when it builds the tree.
type base struct {
	schema   *schema.Schema
	estRows  float64
	estCost  float64
	ordering []OrderCol
}

func (b *base) Schema() *schema.Schema { return b.schema }
func (b *base) EstRows() float64       { return b.estRows }
func (b *base) EstCost() float64       { return b.estCost }
func (b *base) Ordering() []OrderCol   { return b.ordering }

// SetEstimates records planner estimates on any operator embedding base.
type estimateSetter interface {
	setEstimates(rows, cost float64)
	setOrdering(o []OrderCol)
}

func (b *base) setEstimates(rows, cost float64) { b.estRows, b.estCost = rows, cost }
func (b *base) setOrdering(o []OrderCol)        { b.ordering = o }

// SetEstimates assigns cardinality and cost estimates to a node built by
// the planner.
func SetEstimates(n Node, rows, cost float64) {
	if s, ok := n.(estimateSetter); ok {
		s.setEstimates(rows, cost)
	}
}

// SetOrdering assigns the guaranteed output ordering of a node.
func SetOrdering(n Node, o []OrderCol) {
	if s, ok := n.(estimateSetter); ok {
		s.setOrdering(o)
	}
}

// ---- Scan ----

// ScanNode reads a base table, optionally through a sorted index range.
type ScanNode struct {
	base
	Table *storage.Table
	// IndexOrd selects an index scan on that column ordinal when >= 0.
	IndexOrd int
	Bounds   storage.Bounds
}

// NewScanNode builds a scan. alias qualifies the output schema.
func NewScanNode(t *storage.Table, alias string) *ScanNode {
	s := &ScanNode{Table: t, IndexOrd: -1}
	s.schema = t.Schema.WithQualifier(alias)
	return s
}

// Label implements Node.
func (s *ScanNode) Label() string {
	if s.IndexOrd >= 0 {
		return fmt.Sprintf("IndexScan(%s.%s)", s.Table.Name, s.Table.Schema.Columns[s.IndexOrd].Name)
	}
	return fmt.Sprintf("Scan(%s)", s.Table.Name)
}

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// Execute implements Node.
func (s *ScanNode) Execute(ctx *Ctx) (*Result, error) {
	if s.IndexOrd >= 0 {
		ix := s.Table.IndexByOrdinal(s.IndexOrd)
		if ix == nil {
			return nil, fmt.Errorf("exec: plan expects index on %s column %d but none exists", s.Table.Name, s.IndexOrd)
		}
		ids := ix.Scan(s.Bounds)
		rows := make([]schema.Row, len(ids))
		for i, id := range ids {
			if err := ctx.Tick(i); err != nil {
				return nil, err
			}
			rows[i] = s.Table.Rows[id]
		}
		return &Result{Schema: s.schema, Rows: rows}, nil
	}
	// Sequential scan shares the table's row slice; downstream operators
	// never mutate input rows.
	return &Result{Schema: s.schema, Rows: s.Table.Rows}, nil
}

// ValuesNode serves literal rows; used for planned constants and tests.
type ValuesNode struct {
	base
	RowsData []schema.Row
}

// NewValuesNode wraps literal rows in a node.
func NewValuesNode(s *schema.Schema, rows []schema.Row) *ValuesNode {
	n := &ValuesNode{RowsData: rows}
	n.schema = s
	return n
}

// Label implements Node.
func (n *ValuesNode) Label() string { return fmt.Sprintf("Values(%d)", len(n.RowsData)) }

// Children implements Node.
func (n *ValuesNode) Children() []Node { return nil }

// Execute implements Node.
func (n *ValuesNode) Execute(*Ctx) (*Result, error) {
	return &Result{Schema: n.schema, Rows: n.RowsData}, nil
}

// RequalifyNode renames the qualifier of its child's schema without
// touching rows; it gives a shared CTE body a per-reference alias.
type RequalifyNode struct {
	base
	Input Node
}

// NewRequalifyNode wraps child with a new schema qualifier.
func NewRequalifyNode(child Node, alias string) *RequalifyNode {
	n := &RequalifyNode{Input: child}
	n.schema = child.Schema().WithQualifier(alias)
	n.estRows = child.EstRows()
	n.estCost = child.EstCost()
	n.ordering = child.Ordering()
	return n
}

// Label implements Node.
func (n *RequalifyNode) Label() string { return "Requalify" }

// Children implements Node.
func (n *RequalifyNode) Children() []Node { return []Node{n.Input} }

// Execute implements Node.
func (n *RequalifyNode) Execute(ctx *Ctx) (*Result, error) {
	r, err := Run(ctx, n.Input)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: n.schema, Rows: r.Rows}, nil
}
