// Pull-based streaming execution. Open compiles a plan into a tree of
// batch iterators: scans, filters, projections, limits, and hash-join
// probes stream morsel-sized row batches downstream while upstream
// morsels are still being claimed, so the first rows leave the engine
// long before the last segment is read. Pipeline breakers — sort, hash
// aggregation, window, set operations, the join build side — keep their
// materializing (bit-identical, spill-capable) Execute internally and
// expose the same iterator surface over the finished result.
//
// The streaming path preserves the engine's execution contract exactly:
//   - Results and row order are byte-identical to Run at any parallelism
//     (the parallel scan pump delivers morsels strictly in claim order).
//   - Errors are the same sentinels: cooperative cancellation between
//     batches, memory-budget reservations with the same accounting
//     constants, panic containment per batch (govern.Internalize), and
//     the SlowOp/WorkerPanic fault injections at the same points.
//   - Shared subtrees (CTEs referenced from more than one parent edge)
//     materialize through Run so they still execute exactly once.
//
// Closing a stream early — before exhaustion — shuts down its worker
// goroutines and releases every memory reservation its operators hold;
// spill files remain owned by govern.Resources and are removed by its
// Close, as on the materializing path.
package exec

import (
	"time"

	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/schema"
	"repro/internal/types"
)

// Stream is a pull-based batch iterator over an executing plan. Next
// returns the next non-empty batch of rows, or (nil, nil) once the
// stream is exhausted; after an error every subsequent Next returns the
// same error. Batches may alias engine-internal buffers — they are valid
// until the next Next or Close (adopt them only when OwnsRows allows).
// Close is idempotent, stops in-flight work, and releases the stream's
// memory reservations; it must be called even after EOS or an error
// (both also release eagerly, so a late Close is a no-op).
//
// A Stream is not safe for concurrent use.
type Stream interface {
	// Schema is the output shape of the stream's batches.
	Schema() *schema.Schema
	// Next returns the next batch; (nil, nil) means end of stream.
	Next() ([]schema.Row, error)
	// Close terminates the stream and releases its resources.
	Close() error
}

// Open compiles the plan rooted at n into a pull-based Stream executing
// under ctx. Execution is lazy: no work happens (and no goroutines
// start) until the first Next. The same Ctx rules apply as for Run —
// SetParallelism / SetResources / EnableStats before Open, and a node
// must not be both Run and Opened under one Ctx.
func Open(ctx *Ctx, n Node) Stream {
	// Count parent edges: a node reachable more than once (a shared CTE
	// body) must go through Run so its subtree executes exactly once.
	refs := map[Node]int{}
	var walk func(Node)
	walk = func(n Node) {
		refs[n]++
		if refs[n] > 1 {
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return buildStream(ctx, n, refs)
}

// OwnsRows reports whether the rows a plan produces are freshly
// allocated by its own operators — exclusively owned by the execution —
// rather than aliases of shared storage (table row caches, literal
// Values data). Owned rows may be adopted by the caller without copying.
func OwnsRows(n Node) bool {
	switch t := n.(type) {
	case *ProjectNode, *HashJoinNode, *NestedLoopJoinNode, *GroupNode, *WindowNode:
		return true
	case *FilterNode:
		return OwnsRows(t.Input)
	case *SortNode:
		return OwnsRows(t.Input)
	case *LimitNode:
		return OwnsRows(t.Input)
	case *DistinctNode:
		return OwnsRows(t.Input)
	case *RequalifyNode:
		return OwnsRows(t.Input)
	case *SetOpNode:
		// Set-op output rows come from the left input.
		return OwnsRows(t.Left)
	case *UnionNode:
		return OwnsRows(t.Left) && OwnsRows(t.Right)
	default:
		// Scans and Values alias shared buffers; unknown (external)
		// operators get the conservative answer.
		return false
	}
}

// buildStream dispatches one node to its streaming source. Operators
// without a streaming implementation — the pipeline breakers — fall back
// to runSource, which materializes through Run and slices the result.
func buildStream(ctx *Ctx, n Node, refs map[Node]int) Stream {
	if refs[n] > 1 {
		return runStream(ctx, n)
	}
	switch t := n.(type) {
	case *ScanNode:
		if t.IndexOrd < 0 && t.Pred != nil {
			return newOpStream(ctx, t, t.schema, &scanSource{scan: t}, false)
		}
		// Index and plain sequential scans materialize in one step (the
		// gather is small or the row cache is shared); stream the slices.
		return newOpStream(ctx, t, t.Schema(), &materialSource{get: t.Execute}, false)
	case *ValuesNode:
		return newOpStream(ctx, t, t.schema, &materialSource{get: t.Execute}, false)
	case *FilterNode:
		return newOpStream(ctx, t, t.schema, &filterSource{n: t, child: buildStream(ctx, t.Input, refs)}, false)
	case *ProjectNode:
		return newOpStream(ctx, t, t.schema, &projectSource{n: t, child: buildStream(ctx, t.Input, refs)}, false)
	case *LimitNode:
		return newOpStream(ctx, t, t.schema, &limitSource{n: t, child: buildStream(ctx, t.Input, refs)}, false)
	case *RequalifyNode:
		return newOpStream(ctx, t, t.schema, &passSource{child: buildStream(ctx, t.Input, refs)}, false)
	case *HashJoinNode:
		return newOpStream(ctx, t, t.schema, &joinSource{n: t, child: buildStream(ctx, t.Left, refs)}, false)
	default:
		return runStream(ctx, n)
	}
}

// runStream materializes n through Run (breakers, shared subtrees,
// external operators) and streams the finished result in morsel-sized
// slices. Run applies the SlowOp injection and records the node's stats
// itself, so the wrapper does neither.
func runStream(ctx *Ctx, n Node) Stream {
	return newOpStream(ctx, nil, n.Schema(), &materialSource{get: func(c *Ctx) (*Result, error) {
		return Run(c, n)
	}}, true)
}

// source is one operator's streaming engine behind an opStream: open
// prepares state (and may start workers), step produces the next output
// batch ((nil, nil) = exhausted; empty batches are allowed and skipped
// by the wrapper), close stops workers and releases reservations. close
// is called exactly once, possibly without open having run.
type source interface {
	open(c *Ctx) error
	step(c *Ctx) ([]schema.Row, error)
	close(c *Ctx)
}

// opStream adapts a source to the Stream interface and carries the
// per-operator execution contract: lazy open with the cancellation check
// and SlowOp injection Run performs, panic containment around every
// batch, sticky errors, once-only cleanup, and NodeStats recording.
type opStream struct {
	ctx *Ctx
	// node receives NodeStats on cleanup; nil when the source runs
	// through Run, which records them itself.
	node     Node
	sch      *schema.Schema
	src      source
	skipSlow bool
	opened   bool
	done     bool
	closed   bool
	err      error
	rows     int
	start    time.Time
}

func newOpStream(ctx *Ctx, node Node, sch *schema.Schema, src source, skipSlow bool) *opStream {
	return &opStream{ctx: ctx, node: node, sch: sch, src: src, skipSlow: skipSlow}
}

// Schema implements Stream.
func (s *opStream) Schema() *schema.Schema { return s.sch }

// Next implements Stream.
func (s *opStream) Next() (batch []schema.Row, err error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, nil
	}
	// Panics escaping any batch of work become this query's error
	// instead of crashing the process — the streaming equivalent of
	// Run's per-execution recover.
	defer func() {
		if rec := recover(); rec != nil {
			batch, err = nil, govern.Internalize(rec)
			s.fail(err)
		}
	}()
	// Poll cancellation on every pull, so a canceled consumer (a client
	// that hung up) stops the stream even when upstream work already
	// finished.
	if err := s.ctx.Canceled(); err != nil {
		s.fail(err)
		return nil, err
	}
	if !s.opened {
		s.opened = true
		s.start = time.Now()
		if !s.skipSlow {
			if d := s.ctx.res.SlowOp(); d > 0 {
				select {
				case <-time.After(d):
				case <-s.ctx.ctx.Done():
					err := s.ctx.ctx.Err()
					s.fail(err)
					return nil, err
				}
			}
		}
		if err := s.src.open(s.ctx); err != nil {
			s.fail(err)
			return nil, err
		}
	}
	for {
		b, err := s.src.step(s.ctx)
		if err != nil {
			s.fail(err)
			return nil, err
		}
		if b == nil {
			s.done = true
			s.cleanup()
			return nil, nil
		}
		if len(b) == 0 {
			continue
		}
		s.rows += len(b)
		// Publish the running row count so an active-query snapshot shows
		// live progress; cleanup still writes the authoritative final
		// stats. One mutex acquisition per batch, not per row.
		if s.node != nil && s.ctx.stats != nil {
			s.ctx.noteStreamRows(s.node, s.rows, s.start)
		}
		return b, nil
	}
}

// Close implements Stream.
func (s *opStream) Close() error {
	s.done = true
	s.cleanup()
	return nil
}

func (s *opStream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.cleanup()
}

// cleanup runs exactly once per stream: it closes the source (stopping
// workers and releasing reservations) and finalizes the operator's
// NodeStats with the rows actually delivered.
func (s *opStream) cleanup() {
	if s.closed {
		return
	}
	s.closed = true
	s.src.close(s.ctx)
	if s.node != nil && s.ctx.stats != nil && s.opened {
		elapsed := time.Since(s.start)
		s.ctx.mu.Lock()
		st := s.ctx.statLocked(s.node)
		st.Rows, st.Start, st.Elapsed = s.rows, s.start, elapsed
		s.ctx.mu.Unlock()
	}
}

// ---- Materialized sources ----

// materialSource executes a node's materializing path once at open and
// serves the result in morsel-sized slices.
type materialSource struct {
	get  func(c *Ctx) (*Result, error)
	rows []schema.Row
	off  int
}

func (m *materialSource) open(c *Ctx) error {
	r, err := m.get(c)
	if err != nil {
		return err
	}
	m.rows = r.Rows
	return nil
}

func (m *materialSource) step(*Ctx) ([]schema.Row, error) {
	if m.off >= len(m.rows) {
		return nil, nil
	}
	lo := m.off
	hi := min(lo+MorselSize, len(m.rows))
	m.off = hi
	return m.rows[lo:hi:hi], nil
}

func (m *materialSource) close(*Ctx) { m.rows = nil }

// ---- Scan ----

// scanSource streams a fused-predicate sequential scan: zone maps prune
// segments at open, then segment-local morsels are evaluated — in
// parallel by the morsel pump when the input is large enough — and
// delivered strictly in morsel order, so the batch sequence concatenates
// to exactly executeFiltered's output.
type scanSource struct {
	scan    *ScanNode
	pump    *morselPump
	charged int64
}

func (s *scanSource) open(c *Ctx) error {
	vec := c.useVector(s.scan.Pred)
	morsels, total := s.scan.planFilteredMorsels(c, vec)
	bytes := int64(total) * rowHdrBytes
	if err := c.reserveOrCharge(bytes); err != nil {
		return err
	}
	s.charged = bytes
	workers := min(c.workersFor(total), len(morsels))
	c.noteWorkers(s.scan, workers)
	c.noteEval(s.scan, vec, total)
	s.pump = newMorselPump(c, len(morsels), workers, func(m int) ([]schema.Row, error) {
		return s.scan.filterMorsel(c, morsels[m], vec)
	})
	return nil
}

func (s *scanSource) step(*Ctx) ([]schema.Row, error) { return s.pump.next() }

func (s *scanSource) close(c *Ctx) {
	if s.pump != nil {
		s.pump.close()
	}
	c.res.Release(s.charged)
	s.charged = 0
}

// ---- Filter ----

// filterSource pulls one child batch per step and keeps the rows whose
// predicate is TRUE, with the same vector/row duality (and row-path
// fallback on kernel errors) as FilterNode.Execute.
type filterSource struct {
	n       *FilterNode
	child   Stream
	vec     bool
	sel     []int
	charged int64
	rowsIn  int
}

func (f *filterSource) open(c *Ctx) error {
	f.vec = c.useVector(f.n.Pred)
	if f.vec {
		f.sel = make([]int, 0, MorselSize)
	}
	return nil
}

func (f *filterSource) step(c *Ctx) ([]schema.Row, error) {
	b, err := f.child.Next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		c.noteEval(f.n, f.vec, f.rowsIn)
		return nil, nil
	}
	f.rowsIn += len(b)
	bytes := int64(len(b)) * rowHdrBytes
	if err := c.reserveOrCharge(bytes); err != nil {
		return nil, err
	}
	f.charged += bytes
	out := make([]schema.Row, 0, len(b)/4+1)
	if f.vec {
		// Upstream batches can exceed MorselSize (a materialized breaker
		// slice); keep kernel chunks at the scratch width.
		for lo := 0; lo < len(b); lo += MorselSize {
			hi := min(lo+MorselSize, len(b))
			sel, perr := eval.EvalPredicateBatch(f.n.Pred, b[lo:hi], nil, f.sel[:0])
			if perr != nil {
				return nil, perr
			}
			f.sel = sel
			for _, i := range sel {
				out = append(out, b[lo+i])
			}
		}
		return out, nil
	}
	for i, r := range b {
		if err := c.Tick(i); err != nil {
			return nil, err
		}
		ok, err := eval.EvalPredicate(f.n.Pred, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (f *filterSource) close(c *Ctx) {
	f.child.Close()
	c.res.Release(f.charged)
	f.charged = 0
}

// ---- Project ----

// projectSource computes output columns batch-at-a-time; the vector path
// assembles rows from one flat backing array per chunk, exactly like
// ProjectNode.Execute, so adopted rows stay disjoint.
type projectSource struct {
	n       *ProjectNode
	child   Stream
	vec     bool
	cols    [][]types.Value
	charged int64
	rowsIn  int
}

func (p *projectSource) open(c *Ctx) error {
	p.vec = c.useVector(p.n.Exprs...)
	if p.vec {
		p.cols = evalScratch(len(p.n.Exprs), MorselSize)
	}
	return nil
}

func (p *projectSource) step(c *Ctx) ([]schema.Row, error) {
	b, err := p.child.Next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		c.noteEval(p.n, p.vec, p.rowsIn)
		return nil, nil
	}
	p.rowsIn += len(b)
	ne := len(p.n.Exprs)
	bytes := int64(len(b)) * (rowHdrBytes + int64(ne)*valueBytes)
	if err := c.reserveOrCharge(bytes); err != nil {
		return nil, err
	}
	p.charged += bytes
	out := make([]schema.Row, len(b))
	serial := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := c.Tick(i - lo); err != nil {
				return err
			}
			row := make(schema.Row, ne)
			for j, f := range p.n.Exprs {
				v, err := f.Eval(b[i])
				if err != nil {
					return err
				}
				row[j] = v
			}
			out[i] = row
		}
		return nil
	}
	if !p.vec {
		if err := serial(0, len(b)); err != nil {
			return nil, err
		}
		return out, nil
	}
	for lo := 0; lo < len(b); lo += MorselSize {
		hi := min(lo+MorselSize, len(b))
		chunk := b[lo:hi]
		if !tryBatchAll(p.n.Exprs, chunk, p.cols) {
			if err := serial(lo, hi); err != nil {
				return nil, err
			}
			continue
		}
		flat := make([]types.Value, len(chunk)*ne)
		for i := range chunk {
			row := flat[i*ne : (i+1)*ne : (i+1)*ne]
			for j := 0; j < ne; j++ {
				row[j] = p.cols[j][i]
			}
			out[lo+i] = row
		}
	}
	return out, nil
}

func (p *projectSource) close(c *Ctx) {
	p.child.Close()
	c.res.Release(p.charged)
	p.charged = 0
}

// ---- Limit ----

// limitSource skips Offset rows, then passes through at most N. Once the
// limit is reached the next step reports EOS, which closes the child —
// upstream work stops without draining the rest of the input.
type limitSource struct {
	n       *LimitNode
	child   Stream
	skip    int64
	emitted int64
	done    bool
}

func (l *limitSource) open(*Ctx) error {
	l.skip = l.n.Offset
	return nil
}

func (l *limitSource) step(*Ctx) ([]schema.Row, error) {
	if l.done {
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.skip > 0 {
		if int64(len(b)) <= l.skip {
			l.skip -= int64(len(b))
			return b[:0], nil
		}
		b = b[l.skip:]
		l.skip = 0
	}
	if l.n.N >= 0 {
		left := l.n.N - l.emitted
		if int64(len(b)) >= left {
			b = b[:left]
			l.done = true
		}
	}
	l.emitted += int64(len(b))
	return b, nil
}

func (l *limitSource) close(*Ctx) { l.child.Close() }

// ---- Requalify ----

// passSource forwards child batches untouched; the wrapping opStream
// carries the requalified schema.
type passSource struct{ child Stream }

func (p *passSource) open(*Ctx) error                 { return nil }
func (p *passSource) step(*Ctx) ([]schema.Row, error) { return p.child.Next() }
func (p *passSource) close(*Ctx)                      { p.child.Close() }

// ---- Hash join probe ----

// joinSource materializes the build side (through Run, reusing a cached
// build table when the context allows) at open, then probes child
// batches incrementally. When the build-side reservation is refused and
// the query may spill, the whole join degrades to the materializing
// path — Run handles the grace-hash partitioning — and its result is
// streamed in slices, keeping the budget semantics identical.
type joinSource struct {
	n         *HashJoinNode
	child     Stream
	ps        *probeState
	vecProbe  bool
	buildRows int
	reserved  int64
	charged   int64
	rowsIn    int
	mat       []schema.Row
	matOff    int
	matMode   bool
}

func (j *joinSource) open(c *Ctx) error {
	build, buildRows := j.n.cachedTable(c)
	if build == nil {
		r, err := Run(c, j.n.Right)
		if err != nil {
			return err
		}
		buildRows = len(r.Rows)
		work := joinWorkBytes(0, buildRows)
		if err := c.res.Reserve(work); err != nil {
			return j.fallback(c, err)
		}
		j.reserved = work
		workers := c.workersFor(buildRows)
		c.noteWorkers(j.n, workers)
		build, err = buildJoinTable(c, r.Rows, j.n.RightKeys, workers)
		if err != nil {
			return err
		}
		j.n.builds.Add(1)
		j.n.storeTable(c, build, buildRows)
	} else {
		work := joinWorkBytes(0, buildRows)
		if err := c.res.Reserve(work); err != nil {
			return j.fallback(c, err)
		}
		j.reserved = work
	}
	j.buildRows = buildRows
	j.vecProbe = c.useVector(j.n.LeftKeys...) && c.useVector(j.n.Residual)
	j.ps = newProbeState(j.n, build, j.vecProbe)
	return nil
}

// fallback degrades to the fully materialized execution when the
// in-memory build does not fit the budget: with spilling enabled Run
// takes the grace-hash path (or fails with the same sentinel the
// materializing plan would), and the finished result is streamed.
func (j *joinSource) fallback(c *Ctx, rerr error) error {
	if !c.res.CanSpill() {
		return rerr
	}
	r, err := Run(c, j.n)
	if err != nil {
		return err
	}
	j.mat, j.matMode = r.Rows, true
	return nil
}

func (j *joinSource) step(c *Ctx) ([]schema.Row, error) {
	if j.matMode {
		if j.matOff >= len(j.mat) {
			return nil, nil
		}
		lo := j.matOff
		hi := min(lo+MorselSize, len(j.mat))
		j.matOff = hi
		return j.mat[lo:hi:hi], nil
	}
	b, err := j.child.Next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		c.noteEval(j.n, c.useVector(j.n.RightKeys...) && j.vecProbe, j.rowsIn+j.buildRows)
		return nil, nil
	}
	j.rowsIn += len(b)
	out := make([]schema.Row, 0, len(b))
	out, err = j.ps.probeRange(c, b, 0, len(b), out)
	if err != nil {
		return nil, err
	}
	bytes := int64(len(out)) * (rowHdrBytes + int64(j.n.schema.Len())*valueBytes)
	c.res.Charge(bytes)
	j.charged += bytes
	return out, nil
}

func (j *joinSource) close(c *Ctx) {
	j.child.Close()
	c.res.Release(j.reserved + j.charged)
	j.reserved, j.charged = 0, 0
	j.mat = nil
}
