package sqllex

import "testing"

func scanAll(t *testing.T, src string) []Token {
	t.Helper()
	l := New(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == TokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestBasicTokens(t *testing.T) {
	toks := scanAll(t, "SELECT epc, rtime FROM caseR WHERE rtime <= 5 AND x <> 'o''k'")
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokIdent, "select"}, {TokIdent, "epc"}, {TokOp, ","}, {TokIdent, "rtime"},
		{TokIdent, "from"}, {TokIdent, "caser"}, {TokIdent, "where"},
		{TokIdent, "rtime"}, {TokOp, "<="}, {TokNumber, "5"},
		{TokIdent, "and"}, {TokIdent, "x"}, {TokOp, "<>"}, {TokString, "o'k"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%d,%q), want (%d,%q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestNumbersAndDots(t *testing.T) {
	toks := scanAll(t, "a.b 1.5 2. x")
	// "2." lexes as number 2 then op "." (member access needs ident after).
	if toks[0].Text != "a" || toks[1].Text != "." || toks[2].Text != "b" {
		t.Errorf("qualified ref mis-lexed: %v", toks[:3])
	}
	if toks[3].Kind != TokNumber || toks[3].Text != "1.5" {
		t.Errorf("float literal = %v", toks[3])
	}
	if toks[4].Kind != TokNumber || toks[4].Text != "2" || toks[5].Text != "." {
		t.Errorf("trailing dot = %v %v", toks[4], toks[5])
	}
}

func TestParamsAndComments(t *testing.T) {
	toks := scanAll(t, "select * from $input -- trailing\n/* block\ncomment */ where 1=1")
	var params []string
	for _, tok := range toks {
		if tok.Kind == TokParam {
			params = append(params, tok.Text)
		}
	}
	if len(params) != 1 || params[0] != "input" {
		t.Errorf("params = %v", params)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	l := New("a b")
	p1, _ := l.Peek()
	p2, _ := l.Peek()
	if p1 != p2 {
		t.Fatal("Peek must be stable")
	}
	n, _ := l.Next()
	if n != p1 {
		t.Fatal("Next must return peeked token")
	}
	n2, _ := l.Next()
	if n2.Text != "b" {
		t.Fatalf("second token = %v", n2)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a @ b", "$"} {
		l := New(src)
		var err error
		for err == nil {
			var tok Token
			tok, err = l.Next()
			if err == nil && tok.Kind == TokEOF {
				t.Errorf("lex %q: expected error", src)
				break
			}
		}
	}
}

func TestErrorPosition(t *testing.T) {
	l := New("select\n  @")
	var err error
	for err == nil {
		var tok Token
		tok, err = l.Next()
		if tok.Kind == TokEOF {
			break
		}
	}
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); got[:4] != "2:3:" {
		t.Errorf("error position = %q, want prefix 2:3:", got)
	}
}
