// Package sqllex tokenizes SQL and extended-SQL-TS source text. Both the
// SQL parser and the cleansing-rule parser consume this stream, so the
// rule language inherits SQL's literals (including interval shorthand like
// "5 MINS") for free.
package sqllex

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a token.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp    // operators and punctuation: = <> != < <= > >= + - * / ( ) , . ;
	TokParam // $name placeholders used in rule templates
)

// Token is one lexical element. Text preserves the original spelling for
// identifiers (lower-cased) and the unquoted body for strings.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

// Lexer is a single-pass tokenizer with one-token lookahead managed by the
// parsers via Peek/Next.
type Lexer struct {
	src  string
	pos  int
	peek *Token
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Errorf formats an error with position context.
func (l *Lexer) Errorf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() (Token, error) {
	if l.peek == nil {
		t, err := l.scan()
		if err != nil {
			return Token{}, err
		}
		l.peek = &t
	}
	return *l.peek, nil
}

// Next consumes and returns the next token.
func (l *Lexer) Next() (Token, error) {
	if l.peek != nil {
		t := *l.peek
		l.peek = nil
		return t, nil
	}
	return l.scan()
}

func (l *Lexer) scan() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: strings.ToLower(l.src[start:l.pos]), Pos: start}, nil
	case c >= '0' && c <= '9':
		sawDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !sawDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				sawDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.Errorf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
	case c == '$':
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		if l.pos == start+1 {
			return Token{}, l.Errorf(start, "empty parameter name after $")
		}
		return Token{Kind: TokParam, Text: strings.ToLower(l.src[start+1 : l.pos]), Pos: start}, nil
	default:
		for _, op := range [...]string{"<>", "!=", "<=", ">=", "&&", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return Token{Kind: TokOp, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("=<>+-*/(),.;", rune(c)) {
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, l.Errorf(start, "unexpected character %q", c)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += end + 4
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
