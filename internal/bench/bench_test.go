package bench

import (
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/exec"
)

func loadSmall(t testing.TB) *Env {
	t.Helper()
	e, err := Load(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func resultKey(t *testing.T, e *Env, query string, strat repro.Strategy, rules []string) string {
	t.Helper()
	res, err := e.DB.Rewriter.RewriteSQL(query, rules, strat)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	out, err := exec.Run(exec.NewCtx(), res.Plan)
	if err != nil {
		t.Fatalf("exec: %v\nsql: %s", err, res.SQL)
	}
	lines := make([]string, len(out.Rows))
	for i, r := range out.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// All correct strategies agree on q1 and q2; the dirty baseline differs
// (it sees the anomalies).
func TestVariantsAgreeOnBenchmarkQueries(t *testing.T) {
	e := loadSmall(t)
	for _, mk := range []struct {
		name  string
		query string
		// expanded is infeasible beyond 3 rules (cycle/missing).
		rules []string
		// wantRows: q2 at low selectivity can legitimately be empty at
		// tiny scale (DC visits happen early in each pallet's journey),
		// so row presence is only asserted where the window guarantees it.
		wantRows bool
	}{
		{"q1", e.Q1(0.2), e.RulePrefix(3), true},
		{"q2-low", e.Q2(0.2), e.RulePrefix(3), false},
		{"q2-wide", e.Q2(1.0), e.RulePrefix(3), true},
		{"q2p", e.Q2Prime(1.0), e.RulePrefix(3), true},
	} {
		want := resultKey(t, e, mk.query, repro.Naive, mk.rules)
		for _, strat := range []repro.Strategy{repro.Expanded, repro.JoinBack, repro.Auto} {
			got := resultKey(t, e, mk.query, strat, mk.rules)
			if got != want {
				t.Errorf("%s: %v disagrees with naive", mk.name, strat)
			}
		}
		if mk.wantRows && want == "" {
			t.Errorf("%s returned no rows; selectivity mis-scaled", mk.name)
		}
	}
}

func TestDirtyBaselineDiffersOnQ1(t *testing.T) {
	e := loadSmall(t)
	q := e.Q1(0.4)
	rules := e.RulePrefix(3)
	clean := resultKey(t, e, q, repro.Naive, rules)
	dirty := resultKey(t, e, q, repro.Dirty, nil)
	if clean == dirty {
		t.Error("dirty baseline should differ from cleansed results at 10% anomalies")
	}
}

// All five rules (including cycle and the two-part missing rule) work
// through the join-back path on the real workload.
func TestAllFiveRulesJoinBack(t *testing.T) {
	e := loadSmall(t)
	q := e.Q1(0.1)
	naive := resultKey(t, e, q, repro.Naive, e.RulePrefix(5))
	jb := resultKey(t, e, q, repro.JoinBack, e.RulePrefix(5))
	if naive != jb {
		t.Error("join-back disagrees with naive under all five rules")
	}
	// Expanded must report infeasible.
	if _, err := e.DB.Rewriter.RewriteSQL(q, e.RulePrefix(5), repro.Expanded); err == nil {
		t.Error("expanded should be infeasible with the cycle rule enabled")
	}
}

// Figure 7(b,c): q1's own OLAP functions and the cleansing rule share the
// (epc, rtime) sort order, so q1_e must not add a sort over q1. Figure
// 7(e,f): q2 has no sort at all (hash aggregation), so q2_e pays one.
func TestFig7PlanShapes(t *testing.T) {
	e := loadSmall(t)
	reader := e.RulePrefix(1)

	planOf := func(q string, strat repro.Strategy, rules []string) exec.Node {
		res, err := e.DB.Rewriter.RewriteSQL(q, rules, strat)
		if err != nil {
			t.Fatal(err)
		}
		return res.Plan
	}
	q1 := planOf(e.Q1(0.1), repro.Dirty, nil)
	q1e := planOf(e.Q1(0.1), repro.Expanded, reader)
	s1, s1e := exec.CountNodes(q1, "Sort"), exec.CountNodes(q1e, "Sort")
	if s1e != s1 {
		t.Errorf("q1_e sorts = %d, q1 sorts = %d; cleansing must share q1's sort order", s1e, s1)
	}

	q2 := planOf(e.Q2(0.1), repro.Dirty, nil)
	q2e := planOf(e.Q2(0.1), repro.Expanded, reader)
	s2, s2e := exec.CountNodes(q2, "Sort"), exec.CountNodes(q2e, "Sort")
	if s2e != s2+1 {
		t.Errorf("q2_e sorts = %d, q2 sorts = %d; cleansing should add exactly one sort", s2e, s2)
	}

	// Join-back visits caseR twice (sequence probe + fetch).
	q2j := planOf(e.Q2(0.1), repro.JoinBack, reader)
	if scans := exec.CountNodes(q2j, "Scan(caser)") + exec.CountNodes(q2j, "IndexScan(caser"); scans < 2 {
		t.Errorf("q2_j should access caser at least twice, got %d:\n%s", scans, exec.Explain(q2j))
	}
}

func TestSelectivityScaling(t *testing.T) {
	e := loadSmall(t)
	caser, _ := e.DB.Catalog.Table("caser")
	total := caser.RowCount()
	for _, sel := range []float64{0.01, 0.4} {
		rows, err := e.DB.Query(
			"SELECT count(*) FROM caser WHERE rtime <= "+e.tsAtFraction(sel),
			repro.WithStrategy(repro.Dirty))
		if err != nil {
			t.Fatal(err)
		}
		got := float64(rows.Data[0][0].Int()) / float64(total)
		if got < sel/4 || got > sel*4+0.02 {
			t.Errorf("selectivity %.2f yields fraction %.3f", sel, got)
		}
	}
}

func TestRunAllProducesMeasurements(t *testing.T) {
	e := loadSmall(t)
	ms, err := e.RunAll(e.Q1(0.05), e.RulePrefix(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants() {
		m, ok := ms[v.Name]
		if !ok {
			t.Fatalf("variant %s missing", v.Name)
		}
		if m.Feasible && m.Elapsed <= 0 {
			t.Errorf("variant %s has no elapsed time", v.Name)
		}
	}
	if !ms["q_e"].Feasible {
		t.Error("expanded should be feasible for the reader rule")
	}
}

func TestEnvCacheReuse(t *testing.T) {
	a, err := Load(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Load must cache environments")
	}
}
