package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator measures a running rfidserve the way a fleet of
// clients would: open-loop arrival (requests fire on a fixed schedule at
// the target QPS whether or not earlier ones finished — the arrival
// process a service actually faces, unlike closed-loop benchmarks whose
// clients implicitly back off with the server), latency percentiles over
// the full request lifetime, and per-status counts so backpressure
// (429) and failures (5xx) are visible separately. Every scale-out PR
// quotes these service-level numbers instead of microbenchmarks.

// LoadConfig drives one load run against a server's base URL.
type LoadConfig struct {
	// BaseURL of the running server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Queries is the SQL mix, assigned round-robin per request.
	Queries []string
	// Strategy names the rewrite strategy for every request ("" = auto).
	Strategy string
	// QPS is the open-loop target arrival rate. Required, > 0.
	QPS float64
	// Duration is how long arrivals fire. Required, > 0.
	Duration time.Duration
	// MaxInFlight caps concurrently outstanding requests; arrivals past
	// the cap are counted as Dropped rather than queued (keeping the
	// generator open-loop). 0 defaults to max(64, 4×QPS).
	MaxInFlight int
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
}

// LoadStats is one load run's result, shaped for BENCH_PR6.json.
type LoadStats struct {
	TargetQPS   float64 `json:"target_qps"`
	DurationSec float64 `json:"duration_sec"`

	// Sent counts requests issued; Done those that returned any HTTP
	// status; Dropped arrivals skipped at the in-flight cap.
	Sent    int64 `json:"sent"`
	Done    int64 `json:"done"`
	Dropped int64 `json:"dropped"`

	// Status counts responses by HTTP status code.
	Status map[string]int64 `json:"status"`
	// Status5xx aggregates the 5xx rows of Status — the smoke gate.
	Status5xx int64 `json:"status_5xx"`
	// TransportErrors counts requests that died below HTTP (refused,
	// reset, client timeout).
	TransportErrors int64 `json:"transport_errors"`
	// StreamErrors counts 200s whose NDJSON stream lacked the
	// {"status":"ok"} terminal object — a cut stream.
	StreamErrors int64 `json:"stream_errors"`

	// ServedQPS is successful (2xx) responses per second of run time.
	ServedQPS float64 `json:"served_qps"`
	// RowsReturned sums result rows across successful responses.
	RowsReturned int64 `json:"rows_returned"`

	// Latency percentiles over successful responses, milliseconds.
	P50ms float64 `json:"latency_p50_ms"`
	P95ms float64 `json:"latency_p95_ms"`
	P99ms float64 `json:"latency_p99_ms"`
	MaxMs float64 `json:"latency_max_ms"`

	// MetricsScrapeOK reports whether a post-run GET /metrics returned
	// 200 with the engine's query counter present.
	MetricsScrapeOK bool `json:"metrics_scrape_ok"`
}

// RunLoad fires the configured open-loop load and collects LoadStats.
// It returns early (with the stats so far) if ctx is canceled. The final
// /metrics scrape runs after the last in-flight request completes.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadStats, error) {
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: QPS and Duration are required")
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: at least one query is required")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = int(math.Max(64, 4*cfg.QPS))
	}

	st := &LoadStats{
		TargetQPS:   cfg.QPS,
		DurationSec: cfg.Duration.Seconds(),
		Status:      map[string]int64{},
	}
	client := &http.Client{Timeout: cfg.Timeout}
	var (
		wg        sync.WaitGroup
		sem       = make(chan struct{}, maxInFlight)
		mu        sync.Mutex // guards latencies and st.Status
		latencies []float64
		done      atomic.Int64
		ok2xx     atomic.Int64
		fivexx    atomic.Int64
		transport atomic.Int64
		stream    atomic.Int64
		rowsTotal atomic.Int64
	)

	issue := func(sql string) {
		defer wg.Done()
		defer func() { <-sem }()
		body, _ := json.Marshal(map[string]any{"sql": sql, "strategy": cfg.Strategy})
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			transport.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			transport.Add(1)
			return
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			transport.Add(1)
			return
		}
		elapsed := time.Since(start)
		done.Add(1)
		mu.Lock()
		st.Status[strconv.Itoa(resp.StatusCode)]++
		mu.Unlock()
		if resp.StatusCode >= 500 {
			fivexx.Add(1)
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			ok2xx.Add(1)
			if n, ok := footerRowCount(payload); ok {
				rowsTotal.Add(n)
			} else {
				stream.Add(1)
			}
			mu.Lock()
			latencies = append(latencies, float64(elapsed.Microseconds())/1000)
			mu.Unlock()
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()
	runStart := time.Now()
	next := 0
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
				st.Sent++
				wg.Add(1)
				go issue(cfg.Queries[next%len(cfg.Queries)])
				next++
			default:
				st.Dropped++
			}
		}
	}
	wg.Wait()
	wall := time.Since(runStart).Seconds()

	st.Done = done.Load()
	st.Status5xx = fivexx.Load()
	st.TransportErrors = transport.Load()
	st.StreamErrors = stream.Load()
	st.RowsReturned = rowsTotal.Load()
	if wall > 0 {
		st.ServedQPS = float64(ok2xx.Load()) / wall
	}
	sort.Float64s(latencies)
	st.P50ms = percentile(latencies, 0.50)
	st.P95ms = percentile(latencies, 0.95)
	st.P99ms = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		st.MaxMs = latencies[n-1]
	}
	st.MetricsScrapeOK = scrapeMetrics(ctx, client, cfg.BaseURL)
	return st, nil
}

// footerRowCount scans an NDJSON response for the {"status":"ok"}
// terminal object and returns its row_count.
func footerRowCount(payload []byte) (int64, bool) {
	lines := bytes.Split(bytes.TrimSpace(payload), []byte("\n"))
	if len(lines) == 0 {
		return 0, false
	}
	var footer struct {
		Status   string `json:"status"`
		RowCount int64  `json:"row_count"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &footer); err != nil || footer.Status != "ok" {
		return 0, false
	}
	return footer.RowCount, true
}

// percentile interpolates nearest-rank on an ascending slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Round(p * float64(len(sorted)-1)))
	return sorted[idx]
}

// scrapeMetrics checks the server's /metrics exposition is live and
// carries the engine's query counter.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return err == nil && resp.StatusCode == http.StatusOK &&
		bytes.Contains(body, []byte("repro_queries_total"))
}
