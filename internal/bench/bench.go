// Package bench drives the paper's evaluation (§6): it builds the db-10 …
// db-40 databases with RFIDGen, formulates the benchmark queries q1
// ("dwell" analysis), q2 (site analysis), and q2′ (the uncorrelated-
// predicate variant of Figure 8), scales their rtime predicates to a
// requested selectivity, and runs each query under the dirty / naive /
// expanded / join-back strategies, which is exactly the comparison grid
// behind Figures 7–9.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/exec"
	"repro/internal/types"
)

// Env is one loaded benchmark database with its rules defined.
type Env struct {
	DB    *repro.DB
	Scale int
	Pct   int

	// rtime domain of caseR, for selectivity→timestamp conversion.
	minT, maxT int64
	// RuleNames in Table 1 order: reader, duplicate, replacing, cycle,
	// missing_r1, missing_r2.
	RuleNames []string
	// DC is a distribution-center site that actually appears in the data
	// (q2's constant).
	DC string
}

var (
	envMu    sync.Mutex
	envCache = map[string]*Env{}
)

// Load builds (or returns a cached) database at the given scale factor
// and anomaly percentage, with the five paper rules registered.
func Load(scale, pct int) (*Env, error) {
	key := fmt.Sprintf("%d/%d", scale, pct)
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[key]; ok {
		return e, nil
	}
	e, err := LoadFresh(scale, pct)
	if err != nil {
		return nil, err
	}
	envCache[key] = e
	return e, nil
}

// LoadFresh builds a new, uncached environment, passing opts through to
// repro.Open. The telemetry-overhead benchmark uses it to build otherwise
// identical DBs with observability on and off; everything else should use
// Load and share the cached default environment.
func LoadFresh(scale, pct int, opts ...repro.Option) (*Env, error) {
	db := repro.Open(opts...)
	if err := db.LoadRFIDWorkload(repro.WorkloadConfig{Scale: scale, AnomalyPct: pct, Seed: 20060912}); err != nil {
		return nil, err
	}
	names, err := db.DefinePaperRules()
	if err != nil {
		return nil, err
	}
	e := &Env{DB: db, Scale: scale, Pct: pct, RuleNames: names}
	caser, _ := db.Catalog.Table("caser")
	st := caser.Stats(caser.Schema.IndexOf("rtime"))
	if st == nil || st.Min.IsNull() {
		return nil, fmt.Errorf("bench: caser rtime stats missing")
	}
	e.minT, e.maxT = st.Min.TimeUsec(), st.Max.TimeUsec()
	rows, err := db.Query(
		`SELECT l.site, COUNT(*) c FROM caser r, locs l
		 WHERE r.biz_loc = l.gln AND l.site IN ('distribution center 0','distribution center 1','distribution center 2','distribution center 3','distribution center 4')
		 GROUP BY l.site ORDER BY c DESC LIMIT 1`,
		repro.WithStrategy(repro.Dirty))
	if err != nil || len(rows.Data) == 0 {
		return nil, fmt.Errorf("bench: cannot determine a visited DC: %v", err)
	}
	e.DC = rows.Data[0][0].Str()
	return e, nil
}

// tsAtFraction renders the timestamp at a fraction of the rtime domain.
func (e *Env) tsAtFraction(f float64) string {
	usec := e.minT + int64(f*float64(e.maxT-e.minT))
	return types.NewTime(usec).SQL()
}

// Q1 is the paper's "dwell" analysis (Figure 6): average time between two
// consecutive locations, for reads with rtime <= T1, where T1 is placed so
// the predicate selects about sel of caseR.
func (e *Env) Q1(sel float64) string {
	t1 := e.tsAtFraction(sel)
	return fmt.Sprintf(`
		WITH v1 AS (
		  SELECT biz_loc AS current_loc, rtime,
		         MAX(rtime) OVER (PARTITION BY epc ORDER BY rtime ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev_time,
		         MAX(biz_loc) OVER (PARTITION BY epc ORDER BY rtime ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev_loc
		  FROM caser WHERE rtime <= %s)
		SELECT l1.loc_desc, l2.loc_desc, AVG(rtime - prev_time)
		FROM v1, locs l1, locs l2
		WHERE v1.prev_loc = l1.gln AND v1.current_loc = l2.gln
		GROUP BY l1.loc_desc, l2.loc_desc`, t1)
}

// Q2 is the paper's site analysis (Figure 6): reader utilization and
// business steps per manufacturer at one distribution center, for reads
// with rtime >= T2 selecting about sel of caseR.
func (e *Env) Q2(sel float64) string {
	t2 := e.tsAtFraction(1 - sel)
	return fmt.Sprintf(`
		SELECT p.manufacturer, COUNT(DISTINCT s.type), COUNT(DISTINCT c.reader)
		FROM caser c, steps s, locs l, epc_info i, product p
		WHERE c.biz_step = s.biz_step AND c.biz_loc = l.gln
		  AND c.epc = i.epc AND i.product = p.product
		  AND c.rtime >= %s
		  AND l.site = '%s'
		GROUP BY p.manufacturer`, t2, e.DC)
}

// Q2Prime is Figure 8's variant: the site predicate is swapped for a
// business-step *type* predicate, which is deliberately uncorrelated with
// EPC sequences — many sequences contribute a single read each, so the
// join-back's sequence restriction loses its advantage.
func (e *Env) Q2Prime(sel float64) string {
	t2 := e.tsAtFraction(1 - sel)
	return fmt.Sprintf(`
		SELECT l.site, COUNT(DISTINCT p.manufacturer), COUNT(DISTINCT c.reader)
		FROM caser c, steps s, locs l, epc_info i, product p
		WHERE c.biz_step = s.biz_step AND c.biz_loc = l.gln
		  AND c.epc = i.epc AND i.product = p.product
		  AND c.rtime >= %s
		  AND s.type = 'type-3'
		GROUP BY l.site`, t2)
}

// Variant names one strategy column of the paper's plots.
type Variant struct {
	Name  string
	Strat repro.Strategy
}

// Variants is the paper's comparison set: the (incorrect) dirty baseline
// q, the expanded rewrite q_e, the join-back rewrite q_j, and the naive
// rewrite q_n.
func Variants() []Variant {
	return []Variant{
		{"q", repro.Dirty},
		{"q_e", repro.Expanded},
		{"q_j", repro.JoinBack},
		{"q_n", repro.Naive},
	}
}

// Measurement is one timed execution.
type Measurement struct {
	Variant  string
	Elapsed  time.Duration
	Rows     int
	Feasible bool
	SQL      string
}

// Run rewrites and executes one query under one strategy with the given
// rules, returning wall-clock time of the execution (rewrite+plan time is
// excluded, matching the paper's elapsed-time-of-plan measurements; it is
// negligible either way).
func (e *Env) Run(query string, strat repro.Strategy, rules []string) (Measurement, error) {
	m := Measurement{Feasible: true}
	res, err := e.DB.Rewriter.RewriteSQL(query, rules, strat)
	if err != nil {
		// Expanded rewrites are legitimately infeasible for some rule
		// sets (Table 1's {} entries).
		m.Feasible = false
		return m, nil
	}
	m.SQL = res.SQL
	start := time.Now()
	out, err := exec.Run(exec.NewCtx(), res.Plan)
	if err != nil {
		return m, fmt.Errorf("bench: exec: %w", err)
	}
	m.Elapsed = time.Since(start)
	m.Rows = len(out.Rows)
	return m, nil
}

// RunAll measures every variant for one query.
func (e *Env) RunAll(query string, rules []string) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	for _, v := range Variants() {
		m, err := e.Run(query, v.Strat, rules)
		if err != nil {
			return nil, err
		}
		m.Variant = v.Name
		out[v.Name] = m
	}
	return out, nil
}

// RulePrefix returns the first n rules in Table 1 order, where n=5 means
// all five (the missing rule contributes its two sub-rules).
func (e *Env) RulePrefix(n int) []string {
	if n >= 5 {
		return e.RuleNames
	}
	return e.RuleNames[:n]
}

// SelectivityPoints is the sweep used by Figure 7: 1%–40%.
var SelectivityPoints = []float64{0.01, 0.05, 0.10, 0.20, 0.40}

// DirtyPoints is the anomaly-percentage sweep of Figure 9(c,d).
var DirtyPoints = []int{10, 20, 30, 40}
