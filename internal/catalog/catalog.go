// Package catalog holds the database namespace: base tables, registered
// views (used for cleansing-rule inputs like the paper's pallet-read union
// in Example 5), and nothing else — the rules catalog lives one layer up,
// in internal/rules, because rules are per-application artifacts rather
// than storage objects.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/sqlast"
	"repro/internal/storage"
)

// Database is a named collection of tables and views.
type Database struct {
	tables map[string]*storage.Table
	views  map[string]sqlast.Stmt

	// epoch counts catalog generations: it advances whenever tables,
	// views, rules, data, indexes, or statistics change, so cached
	// rewrites and plans keyed by (query, epoch) invalidate themselves.
	// Table/rule mutations that happen outside the repro.DB methods must
	// call BumpEpoch themselves to stay visible to those caches.
	epoch atomic.Uint64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: map[string]*storage.Table{}, views: map[string]sqlast.Stmt{}}
}

// AddTable registers a base table; the name must be unused.
func (d *Database) AddTable(t *storage.Table) error {
	name := strings.ToLower(t.Name)
	if _, exists := d.tables[name]; exists {
		return fmt.Errorf("catalog: table %q already exists", name)
	}
	if _, exists := d.views[name]; exists {
		return fmt.Errorf("catalog: %q already names a view", name)
	}
	d.tables[name] = t
	d.BumpEpoch()
	return nil
}

// Epoch returns the current catalog generation.
func (d *Database) Epoch() uint64 { return d.epoch.Load() }

// BumpEpoch advances the catalog generation, invalidating any cache keyed
// by the previous one.
func (d *Database) BumpEpoch() { d.epoch.Add(1) }

// Table looks up a base table.
func (d *Database) Table(name string) (*storage.Table, bool) {
	t, ok := d.tables[strings.ToLower(name)]
	return t, ok
}

// AddView registers a named view definition.
func (d *Database) AddView(name string, q sqlast.Stmt) error {
	name = strings.ToLower(name)
	if _, exists := d.tables[name]; exists {
		return fmt.Errorf("catalog: %q already names a table", name)
	}
	if _, exists := d.views[name]; exists {
		return fmt.Errorf("catalog: view %q already exists", name)
	}
	d.views[name] = q
	d.BumpEpoch()
	return nil
}

// View looks up a view definition.
func (d *Database) View(name string) (sqlast.Stmt, bool) {
	v, ok := d.views[strings.ToLower(name)]
	return v, ok
}

// ViewNames returns all view names, sorted.
func (d *Database) ViewNames() []string {
	names := make([]string, 0, len(d.views))
	for n := range d.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableNames returns all base-table names, sorted.
func (d *Database) TableNames() []string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
