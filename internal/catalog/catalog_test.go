package catalog

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

func newTable(name string) *storage.Table {
	return storage.NewTable(name, schema.New(schema.Col(name, "x", types.KindInt)))
}

func TestTableRegistration(t *testing.T) {
	db := NewDatabase()
	if err := db.AddTable(newTable("t1")); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(newTable("T1")); err == nil {
		t.Error("duplicate table (case-insensitive) must fail")
	}
	if _, ok := db.Table("T1"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := db.Table("nosuch"); ok {
		t.Error("missing table found")
	}
}

func TestViewRegistration(t *testing.T) {
	db := NewDatabase()
	if err := db.AddTable(newTable("base")); err != nil {
		t.Fatal(err)
	}
	v, err := sqlparser.Parse("select * from base")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddView("v1", v); err != nil {
		t.Fatal(err)
	}
	if err := db.AddView("v1", v); err == nil {
		t.Error("duplicate view must fail")
	}
	if err := db.AddView("base", v); err == nil {
		t.Error("view shadowing a table must fail")
	}
	if err := db.AddTable(newTable("v1")); err == nil {
		t.Error("table shadowing a view must fail")
	}
	if _, ok := db.View("V1"); !ok {
		t.Error("view lookup should be case-insensitive")
	}
}

func TestTableNamesSorted(t *testing.T) {
	db := NewDatabase()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := db.AddTable(newTable(n)); err != nil {
			t.Fatal(err)
		}
	}
	names := db.TableNames()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("TableNames = %v", names)
	}
}
