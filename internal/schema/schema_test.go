package schema

import (
	"testing"

	"repro/internal/types"
)

func testSchema() *Schema {
	return New(
		Col("t", "epc", types.KindString),
		Col("t", "rtime", types.KindTime),
		Col("u", "epc", types.KindString),
		Col("", "computed", types.KindInt),
	)
}

func TestResolveQualified(t *testing.T) {
	s := testSchema()
	idx, err := s.Resolve("t", "epc")
	if err != nil || idx != 0 {
		t.Errorf("t.epc = %d, %v", idx, err)
	}
	idx, err = s.Resolve("u", "EPC") // case-insensitive
	if err != nil || idx != 2 {
		t.Errorf("u.epc = %d, %v", idx, err)
	}
	if _, err := s.Resolve("", "epc"); err == nil {
		t.Error("ambiguous unqualified epc must error")
	}
	idx, err = s.Resolve("", "rtime")
	if err != nil || idx != 1 {
		t.Errorf("rtime = %d, %v", idx, err)
	}
	if _, err := s.Resolve("t", "nosuch"); err == nil {
		t.Error("missing column must error")
	}
	if _, err := s.Resolve("x", "epc"); err == nil {
		t.Error("wrong qualifier must error")
	}
}

func TestIndexOf(t *testing.T) {
	s := testSchema()
	if got := s.IndexOf("computed"); got != 3 {
		t.Errorf("IndexOf(computed) = %d", got)
	}
	if got := s.IndexOf("EPC"); got != 0 {
		t.Errorf("IndexOf(epc) = %d (first match)", got)
	}
	if got := s.IndexOf("nosuch"); got != -1 {
		t.Errorf("IndexOf(nosuch) = %d", got)
	}
}

func TestWithQualifierAndClone(t *testing.T) {
	s := testSchema()
	q := s.WithQualifier("alias")
	for _, c := range q.Columns {
		if c.Table != "alias" {
			t.Fatalf("qualifier = %q", c.Table)
		}
	}
	// Original untouched.
	if s.Columns[0].Table != "t" {
		t.Error("WithQualifier mutated the receiver")
	}
	c := s.Clone()
	c.Columns[0].Name = "changed"
	if s.Columns[0].Name != "epc" {
		t.Error("Clone shares column storage")
	}
}

func TestConcat(t *testing.T) {
	a := New(Col("a", "x", types.KindInt))
	b := New(Col("b", "y", types.KindInt))
	c := Concat(a, b)
	if c.Len() != 2 || c.Columns[0].QualifiedName() != "a.x" || c.Columns[1].QualifiedName() != "b.y" {
		t.Errorf("Concat = %s", c)
	}
}

func TestQualifiedNameAndString(t *testing.T) {
	c := Col("", "solo", types.KindInt)
	if c.QualifiedName() != "solo" {
		t.Errorf("QualifiedName = %q", c.QualifiedName())
	}
	s := New(Col("t", "a", types.KindInt))
	if got := s.String(); got != "(t.a INT)" {
		t.Errorf("String = %q", got)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{types.NewInt(1), types.NewInt(2)}
	c := r.Clone()
	c[0] = types.NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Row.Clone shares storage")
	}
}
