// Package schema describes the shape of relations flowing between the
// storage, planning, and execution layers: named, typed columns with an
// optional source-table qualifier so that expressions written against
// aliased tables can be resolved after joins.
package schema

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Column is one attribute of a relation.
type Column struct {
	// Table is the qualifier (table name or alias) the column is visible
	// under; it may be empty for computed columns.
	Table string
	// Name is the column name, lower-cased.
	Name string
	// Kind is the declared value kind.
	Kind types.Kind
}

// QualifiedName renders "table.name" or just "name" when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// New builds a schema from columns.
func New(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Col is a convenience constructor for a Column.
func Col(table, name string, kind types.Kind) Column {
	return Column{Table: strings.ToLower(table), Name: strings.ToLower(name), Kind: kind}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Resolve finds the index of a column reference. If table is empty, the
// name must be unambiguous across all columns; otherwise both must match.
// The second return distinguishes "not found" (-1,nil error? no) — Resolve
// returns an error for both missing and ambiguous references.
func (s *Schema) Resolve(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range s.Columns {
		if c.Name != name {
			continue
		}
		if table != "" && c.Table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("schema: ambiguous column reference %q", Column{Table: table, Name: name}.QualifiedName())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("schema: column %q not found", Column{Table: table, Name: name}.QualifiedName())
	}
	return found, nil
}

// IndexOf returns the index of the first column with the given name
// regardless of qualifier, or -1.
func (s *Schema) IndexOf(name string) int {
	name = strings.ToLower(name)
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// WithQualifier returns a copy of s with every column's Table set to q.
// Used when a base table or subquery is aliased in a FROM clause.
func (s *Schema) WithQualifier(q string) *Schema {
	q = strings.ToLower(q)
	out := &Schema{Columns: make([]Column, len(s.Columns))}
	for i, c := range s.Columns {
		c.Table = q
		out.Columns[i] = c
	}
	return out
}

// Concat returns the concatenation of two schemas (join output shape).
func Concat(a, b *Schema) *Schema {
	out := &Schema{Columns: make([]Column, 0, len(a.Columns)+len(b.Columns))}
	out.Columns = append(out.Columns, a.Columns...)
	out.Columns = append(out.Columns, b.Columns...)
	return out
}

// Clone returns a deep copy of s.
func (s *Schema) Clone() *Schema {
	out := &Schema{Columns: make([]Column, len(s.Columns))}
	copy(out.Columns, s.Columns)
	return out
}

// String renders the schema for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.QualifiedName(), c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple whose arity matches some Schema.
type Row []types.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
