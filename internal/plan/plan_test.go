package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/types"
)

// testDB builds a small catalog:
//
//	reads(epc string, rtime time, loc string, v int)   -- indexed on rtime, epc
//	locs(gln string, site string)                      -- indexed on gln
//	emptyt(x int)
//	view allreads = reads ∪ reads2 (reads2 has one extra row)
func testDB(t *testing.T) *catalog.Database {
	t.Helper()
	db := catalog.NewDatabase()

	reads := storage.NewTable("reads", schema.New(
		schema.Col("reads", "epc", types.KindString),
		schema.Col("reads", "rtime", types.KindTime),
		schema.Col("reads", "loc", types.KindString),
		schema.Col("reads", "v", types.KindInt),
	))
	// epc e1: rtimes 10,20,30 at locA/locA/locB; epc e2: 15,25 at locB/locC.
	rows := []struct {
		epc string
		ts  int64
		loc string
		v   int64
	}{
		{"e1", 10, "locA", 1},
		{"e1", 20, "locA", 2},
		{"e1", 30, "locB", 3},
		{"e2", 15, "locB", 4},
		{"e2", 25, "locC", 5},
	}
	for _, r := range rows {
		reads.Append(schema.Row{
			types.NewString(r.epc), types.NewTime(r.ts * 1_000_000),
			types.NewString(r.loc), types.NewInt(r.v),
		})
	}
	reads.BuildIndex("rtime")
	reads.BuildIndex("epc")
	reads.Analyze()
	if err := db.AddTable(reads); err != nil {
		t.Fatal(err)
	}

	locs := storage.NewTable("locs", schema.New(
		schema.Col("locs", "gln", types.KindString),
		schema.Col("locs", "site", types.KindString),
	))
	locs.Append(
		schema.Row{types.NewString("locA"), types.NewString("dc1")},
		schema.Row{types.NewString("locB"), types.NewString("dc1")},
		schema.Row{types.NewString("locC"), types.NewString("dc2")},
	)
	locs.BuildIndex("gln")
	locs.Analyze()
	if err := db.AddTable(locs); err != nil {
		t.Fatal(err)
	}

	emptyt := storage.NewTable("emptyt", schema.New(schema.Col("emptyt", "x", types.KindInt)))
	emptyt.Analyze()
	if err := db.AddTable(emptyt); err != nil {
		t.Fatal(err)
	}

	reads2 := storage.NewTable("reads2", reads.Schema.Clone())
	reads2.Append(schema.Row{types.NewString("e3"), types.NewTime(99 * 1_000_000), types.NewString("locZ"), types.NewInt(9)})
	reads2.Analyze()
	if err := db.AddTable(reads2); err != nil {
		t.Fatal(err)
	}
	// A larger table where index scans actually pay off.
	bigt := storage.NewTable("bigt", schema.New(
		schema.Col("bigt", "id", types.KindInt),
		schema.Col("bigt", "grp", types.KindString),
	))
	for i := 0; i < 1000; i++ {
		bigt.Append(schema.Row{types.NewInt(int64(i)), types.NewString(string(rune('a' + i%26)))})
	}
	bigt.BuildIndex("id")
	bigt.Analyze()
	if err := db.AddTable(bigt); err != nil {
		t.Fatal(err)
	}

	uv, err := sqlparser.Parse("select * from reads union all select * from reads2")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddView("allreads", uv); err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *catalog.Database, q string) *exec.Result {
	t.Helper()
	node, err := New(db).PlanSQL(q)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	res, err := exec.Run(exec.NewCtx(), node)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func planFor(t *testing.T, db *catalog.Database, q string) exec.Node {
	t.Helper()
	node, err := New(db).PlanSQL(q)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return node
}

func TestSimpleSelect(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select epc, v from reads where v >= 3")
	if len(res.Rows) != 3 || res.Schema.Len() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectStarNoProjectionOverhead(t *testing.T) {
	db := testDB(t)
	node := planFor(t, db, "select * from reads where v = 1")
	if exec.CountNodes(node, "Project") != 0 {
		t.Fatalf("bare star should skip projection:\n%s", exec.Explain(node))
	}
	res := run(t, db, "select * from reads")
	if len(res.Rows) != 5 || res.Schema.Len() != 4 {
		t.Fatalf("star = %v", res.Rows)
	}
}

func TestIndexScanChosenForSelectivePredicate(t *testing.T) {
	db := testDB(t)
	node := planFor(t, db, "select * from bigt where id >= 10 and id < 20")
	if exec.CountNodes(node, "IndexScan") != 1 {
		t.Fatalf("expected index scan:\n%s", exec.Explain(node))
	}
	res := run(t, db, "select * from bigt where id >= 10 and id < 20")
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// On a tiny table a sequential scan must win instead.
	small := planFor(t, db, "select * from reads where epc = 'e1'")
	if exec.CountNodes(small, "IndexScan") != 0 {
		t.Fatalf("tiny table should seq-scan:\n%s", exec.Explain(small))
	}
	// An unselective range keeps the sequential scan even on the big table.
	wide := planFor(t, db, "select * from bigt where id >= 0")
	if exec.CountNodes(wide, "IndexScan") != 0 {
		t.Fatalf("unselective range should seq-scan:\n%s", exec.Explain(wide))
	}
}

func TestIndexRangeScanWithResidual(t *testing.T) {
	db := testDB(t)
	q := "select * from reads where rtime >= timestamp '1970-01-01 00:00:15' and rtime <= timestamp '1970-01-01 00:00:25' and v <> 4"
	res := run(t, db, q)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCommaJoinWithHashJoin(t *testing.T) {
	db := testDB(t)
	q := "select r.epc, l.site from reads r, locs l where r.loc = l.gln and l.site = 'dc1'"
	node := planFor(t, db, q)
	if exec.CountNodes(node, "HashJoin") != 1 {
		t.Fatalf("expected hash join:\n%s", exec.Explain(node))
	}
	res := run(t, db, q)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAnsiJoinAndLeftJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select r.epc from reads r join locs l on r.loc = l.gln where l.site = 'dc2'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "e2" {
		t.Fatalf("ansi join = %v", res.Rows)
	}
	res = run(t, db, "select l.gln, r.epc from locs l left join reads r on r.loc = l.gln and r.v > 100")
	if len(res.Rows) != 3 {
		t.Fatalf("left join = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if !row[1].IsNull() {
			t.Fatalf("left join must null-pad: %v", res.Rows)
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select epc, count(*), sum(v), count(distinct loc) from reads group by epc")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	byEpc := map[string]schema.Row{}
	for _, r := range res.Rows {
		byEpc[r[0].Str()] = r
	}
	e1 := byEpc["e1"]
	if e1[1].Int() != 3 || e1[2].Int() != 6 || e1[3].Int() != 2 {
		t.Fatalf("e1 aggs = %v", e1)
	}
}

func TestHavingAndOrderByAggregate(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select epc, count(*) as c from reads group by epc having count(*) > 2 order by c desc")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "e1" {
		t.Fatalf("having = %v", res.Rows)
	}
}

func TestGlobalAggregateNoGroupBy(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select count(*), max(v), min(v) from reads")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].Int() != 5 || r[1].Int() != 5 || r[2].Int() != 1 {
		t.Fatalf("global aggs = %v", r)
	}
	// Aggregate over an empty table still yields one row.
	res = run(t, db, "select count(*), max(x) from emptyt")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v", res.Rows)
	}
}

func TestWindowFunctionEndToEnd(t *testing.T) {
	db := testDB(t)
	q := `select epc, rtime, max(loc) over (partition by epc order by rtime rows between 1 preceding and 1 preceding) as prev_loc from reads`
	res := run(t, db, q)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// First read of each sequence has NULL prev_loc.
	nulls := 0
	for _, r := range res.Rows {
		if r[2].IsNull() {
			nulls++
		}
	}
	if nulls != 2 {
		t.Fatalf("expected 2 border rows, got %d: %v", nulls, res.Rows)
	}
}

func TestDuplicateFilterQueryFromPaperSection41(t *testing.T) {
	db := testDB(t)
	// The de-duplication statement of §4.1, adapted to this schema: e1 has
	// locations [locA locA locB] — the second locA is a duplicate.
	q := `with v1 as (
	        select epc, rtime, loc as loc_current,
	               max(loc) over (partition by epc order by rtime asc rows between 1 preceding and 1 preceding) as loc_before
	        from reads)
	      select * from v1 where loc_current <> loc_before or loc_before is null`
	res := run(t, db, q)
	if len(res.Rows) != 4 {
		t.Fatalf("dedup rows = %v", res.Rows)
	}
}

func TestWindowSortSharing(t *testing.T) {
	db := testDB(t)
	// Two window expressions with identical signatures share one sort.
	q := `select max(v) over (partition by epc order by rtime rows 1 preceding) a,
	             min(v) over (partition by epc order by rtime rows 1 preceding) b
	      from reads`
	node := planFor(t, db, q)
	if got := exec.CountNodes(node, "Sort"); got != 1 {
		t.Fatalf("expected 1 sort, got %d:\n%s", got, exec.Explain(node))
	}
	if got := exec.CountNodes(node, "Window"); got != 1 {
		t.Fatalf("expected 1 window node, got %d", got)
	}
	// A second signature forces a second sort.
	q2 := `select max(v) over (partition by epc order by rtime) a,
	              max(v) over (partition by loc order by rtime) b
	       from reads`
	node2 := planFor(t, db, q2)
	if got := exec.CountNodes(node2, "Sort"); got != 2 {
		t.Fatalf("expected 2 sorts, got %d:\n%s", got, exec.Explain(node2))
	}
}

func TestWindowReusesIndexOrderNotApplicable(t *testing.T) {
	db := testDB(t)
	// Index scan on epc yields epc order, but the window needs (epc,
	// rtime); a sort is still required.
	q := "select max(v) over (partition by epc order by rtime) m from reads where epc = 'e1'"
	node := planFor(t, db, q)
	if got := exec.CountNodes(node, "Sort"); got != 1 {
		t.Fatalf("sorts = %d:\n%s", got, exec.Explain(node))
	}
}

func TestInSubquery(t *testing.T) {
	db := testDB(t)
	q := "select epc, v from reads where loc in (select gln from locs where site = 'dc1')"
	res := run(t, db, q)
	if len(res.Rows) != 4 {
		t.Fatalf("in-subquery rows = %v", res.Rows)
	}
	// NOT IN.
	q = "select epc from reads where loc not in (select gln from locs where site = 'dc1')"
	res = run(t, db, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "e2" {
		t.Fatalf("not-in rows = %v", res.Rows)
	}
}

func TestJoinBackShapeSemiJoinViaIn(t *testing.T) {
	db := testDB(t)
	// The join-back pattern: restrict to sequences containing a qualifying
	// read, then fetch the full sequences.
	q := `select r.* from reads r where r.epc in (select epc from reads where v = 3)`
	res := run(t, db, q)
	if len(res.Rows) != 3 {
		t.Fatalf("join-back rows = %v", res.Rows)
	}
}

func TestDistinctAndUnionView(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select distinct loc from reads")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct locs = %v", res.Rows)
	}
	res = run(t, db, "select epc from reads union select epc from reads")
	if len(res.Rows) != 2 {
		t.Fatalf("union dedups = %v", res.Rows)
	}
	res = run(t, db, "select * from allreads")
	if len(res.Rows) != 6 {
		t.Fatalf("view rows = %v", res.Rows)
	}
}

func TestPredicatePushdownThroughUnionView(t *testing.T) {
	db := testDB(t)
	q := "select * from allreads where epc = 'e3'"
	res := run(t, db, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "e3" {
		t.Fatalf("view filter rows = %v", res.Rows)
	}
	// The predicate must reach the branch scans — fused into each branch's
	// Scan (or a Filter directly above it), not sitting above the union.
	node := planFor(t, db, q)
	fused := exec.CountNodes(node, "Scan(reads | ") + exec.CountNodes(node, "Scan(reads2 | ")
	if got := exec.CountNodes(node, "Filter") + fused; got != 2 {
		t.Fatalf("predicate not pushed into union branches (pushed=%d):\n%s", got, exec.Explain(node))
	}
}

func TestCTEPlannedOnce(t *testing.T) {
	db := testDB(t)
	q := `with big as (select epc, v from reads where v > 1)
	      select a.epc from big a, big b where a.epc = b.epc and a.v = 2 and b.v = 3`
	res := run(t, db, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "e1" {
		t.Fatalf("cte self-join = %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select v from reads order by v desc limit 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 5 || res.Rows[1][0].Int() != 4 {
		t.Fatalf("order/limit = %v", res.Rows)
	}
}

func TestAvgIntervalDwellPattern(t *testing.T) {
	db := testDB(t)
	// The q1 "dwell" shape: avg over TIME differences.
	q := `with v1 as (
	        select rtime, max(rtime) over (partition by epc order by rtime rows between 1 preceding and 1 preceding) as prev
	        from reads)
	      select avg(rtime - prev) from v1 where prev is not null`
	res := run(t, db, q)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Gaps: e1 10,10; e2 10 seconds → avg 10s.
	if v := res.Rows[0][0]; v.Kind() != types.KindInterval || v.IntervalUsec() != 10*1_000_000 {
		t.Fatalf("avg dwell = %v (%s)", v, v.Kind())
	}
}

func TestPlanErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"select * from nosuch",
		"select nosuchcol from reads",
		"select r.epc from reads r, locs l where loc2 = 1",
		"select epc from reads group by epc having nosuch > 1",
		"select v, epc from reads group by epc", // v not grouped
		"select * from reads group by epc",
		"select max(v) over (partition by epc order by rtime range between 1 preceding and current row) from reads where 1 = 0 order by nosuch",
	}
	for _, q := range bad {
		if _, err := New(db).PlanSQL(q); err == nil {
			t.Errorf("PlanSQL(%q): expected error", q)
		}
	}
}

func TestAmbiguousColumnDetected(t *testing.T) {
	db := testDB(t)
	_, err := New(db).PlanSQL("select epc from reads a, reads b where v = 1")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguity not detected: %v", err)
	}
}

func TestExplainShowsEstimates(t *testing.T) {
	db := testDB(t)
	node := planFor(t, db, "select * from reads where epc = 'e1'")
	out := exec.Explain(node)
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "cost=") {
		t.Fatalf("explain = %s", out)
	}
}

func TestCostOrderingIndexVsSeq(t *testing.T) {
	db := testDB(t)
	sel := planFor(t, db, "select * from bigt where id < 50")
	all := planFor(t, db, "select * from bigt")
	if sel.EstCost() >= all.EstCost() {
		t.Fatalf("selective query should cost less: %v vs %v", sel.EstCost(), all.EstCost())
	}
}

func TestLikeOperator(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select epc from reads where loc like 'loc%'")
	if len(res.Rows) != 5 {
		t.Fatalf("like rows = %d", len(res.Rows))
	}
	res = run(t, db, "select distinct epc from reads where loc like '%B'")
	if len(res.Rows) != 2 {
		t.Fatalf("suffix like rows = %v", res.Rows)
	}
	res = run(t, db, "select epc from reads where loc like 'loc_' and loc not like 'locA'")
	if len(res.Rows) != 3 {
		t.Fatalf("underscore like rows = %d", len(res.Rows))
	}
	// NULL operand yields NULL, which WHERE drops.
	res = run(t, db, "select * from reads where null like 'x%'")
	if len(res.Rows) != 0 {
		t.Fatal("null like must not match")
	}
}

func TestExceptIntersect(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select loc from reads except select loc from reads where epc = 'e2'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "locA" {
		t.Fatalf("except = %v", res.Rows)
	}
	res = run(t, db, "select loc from reads intersect select gln from locs")
	if len(res.Rows) != 3 {
		t.Fatalf("intersect = %v", res.Rows)
	}
	// Set semantics: duplicates collapse even when both sides have them.
	res = run(t, db, "select epc from reads intersect select epc from reads")
	if len(res.Rows) != 2 {
		t.Fatalf("self intersect = %v", res.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select v from reads order by v limit 2 offset 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 3 || res.Rows[1][0].Int() != 4 {
		t.Fatalf("limit offset = %v", res.Rows)
	}
	res = run(t, db, "select v from reads order by v offset 4")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 5 {
		t.Fatalf("offset only = %v", res.Rows)
	}
	res = run(t, db, "select v from reads order by v offset 99")
	if len(res.Rows) != 0 {
		t.Fatalf("past-end offset = %v", res.Rows)
	}
}

func TestStringFunctions(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select upper(loc), lower(loc), substr(loc, 4), substr(loc, 1, 3) from reads where epc = 'e1' and v = 1")
	r := res.Rows[0]
	if r[0].Str() != "LOCA" || r[1].Str() != "loca" || r[2].Str() != "A" || r[3].Str() != "loc" {
		t.Fatalf("string funcs = %v", r)
	}
}

func TestOrderByNonProjectedColumn(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select epc from reads order by rtime desc limit 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "e1" || res.Rows[1][0].Str() != "e2" {
		t.Fatalf("order by non-projected = %v", res.Rows)
	}
	// Alias-based ORDER BY still works.
	res = run(t, db, "select v * 2 as dv from reads order by dv desc limit 1")
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("order by alias = %v", res.Rows)
	}
	// A name that is both an alias and an input column resolves to the
	// input column.
	res = run(t, db, "select v + 100 as v from reads order by v limit 1")
	if res.Rows[0][0].Int() != 101 {
		t.Fatalf("alias/input collision = %v", res.Rows)
	}
	// Aggregated queries keep working (ORDER BY over aggregates).
	res = run(t, db, "select epc, sum(v) s from reads group by epc order by s desc limit 1")
	if res.Rows[0][0].Str() != "e2" {
		t.Fatalf("order by aggregate = %v", res.Rows)
	}
}
