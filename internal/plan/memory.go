package plan

import (
	"repro/internal/exec"
)

// annotateMemory walks a finished plan and records each materializing
// operator's estimated peak working memory (EXPLAIN prints it as mem=).
// The formulas mirror the executor's accounting charges — the same
// per-value, per-row-reference, and per-key constants — so comparing a
// plan's mem= figures against a query's WithMemoryLimit budget predicts
// which operators will spill. Pass-through operators (scans over resident
// tables, limits, requalifications) keep a zero estimate and are not
// printed.
func annotateMemory(n exec.Node) {
	for _, c := range n.Children() {
		annotateMemory(c)
	}
	switch t := n.(type) {
	case *exec.SortNode:
		in := t.Input.EstRows()
		exec.SetMemEstimate(n,
			in*(float64(len(t.Keys))*exec.ValueBytes+exec.RowHdrBytes+16)+in*exec.RowHdrBytes)
	case *exec.GroupNode:
		in := t.Input.EstRows()
		exec.SetMemEstimate(n,
			in*(exec.KeyRefBytes+8+float64(len(t.Aggs))*exec.ValueBytes))
	case *exec.HashJoinNode:
		exec.SetMemEstimate(n,
			t.Right.EstRows()*(exec.KeyRefBytes+exec.RowHdrBytes)+t.Left.EstRows()*exec.KeyRefBytes)
	case *exec.WindowNode:
		in := t.Input.EstRows()
		exec.SetMemEstimate(n,
			in*(exec.KeyRefBytes+8+float64(len(t.Aggs))*2*exec.ValueBytes+
				exec.RowHdrBytes+float64(n.Schema().Len())*exec.ValueBytes))
	case *exec.ProjectNode:
		exec.SetMemEstimate(n,
			t.Input.EstRows()*(exec.RowHdrBytes+float64(n.Schema().Len())*exec.ValueBytes))
	case *exec.FilterNode:
		exec.SetMemEstimate(n, t.Input.EstRows()*exec.RowHdrBytes)
	case *exec.DistinctNode:
		exec.SetMemEstimate(n,
			t.Input.EstRows()*(exec.RowHdrBytes+exec.KeyRefBytes))
	case *exec.SetOpNode:
		exec.SetMemEstimate(n,
			(t.Left.EstRows()+t.Right.EstRows())*(exec.RowHdrBytes+exec.KeyRefBytes))
	case *exec.UnionNode:
		per := float64(exec.RowHdrBytes)
		if t.Distinct {
			per += exec.KeyRefBytes
		}
		exec.SetMemEstimate(n, (t.Left.EstRows()+t.Right.EstRows())*per)
	}
}
