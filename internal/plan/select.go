package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/storage"
	"repro/internal/types"
)

// outItem is one output column of a select list after star expansion:
// either a passthrough of input column idx or a computed expression.
type outItem struct {
	idx  int // >= 0 for passthrough
	expr sqlast.Expr
	name string
	qual string
}

// finishSelect layers grouping, windows, projection, DISTINCT, ORDER BY
// and LIMIT over the planned FROM/WHERE subtree.
func (b *builder) finishSelect(sel *sqlast.SelectStmt, pl *planned, scope *cteScope) (*planned, error) {
	// A bare "SELECT * FROM ..." needs no projection at all; the rewrite
	// engine generates such shells around cleansing stages constantly and
	// copying wide intermediate results would dominate their cost.
	bareStar := len(sel.Items) == 1 && sel.Items[0].Star && sel.Items[0].StarTable == "" &&
		len(sel.GroupBy) == 0 && sel.Having == nil
	var err error

	items, err := expandItems(sel.Items, pl)
	if err != nil {
		return nil, err
	}
	having := foldConsts(sel.Having)
	orderBy := make([]sqlast.OrderItem, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderBy[i] = sqlast.OrderItem{Expr: foldConsts(o.Expr), Desc: o.Desc}
	}

	grouped := len(sel.GroupBy) > 0 || having != nil || itemsHaveAgg(items)
	if grouped {
		pl, items, having, orderBy, err = b.planGrouping(sel, pl, items, having, orderBy, scope)
		if err != nil {
			return nil, err
		}
		if having != nil {
			pl, err = b.filterNode(pl, having, scope)
			if err != nil {
				return nil, err
			}
		}
	} else {
		pl, items, orderBy, err = b.planWindows(pl, items, orderBy)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY runs before the projection so it may reference any input
	// column, not just projected ones ("SELECT epc ... ORDER BY rtime").
	// Select-list aliases are substituted by their definitions first.
	// Projection and DISTINCT (first-occurrence) both preserve row order,
	// so the final output order is unchanged.
	if len(orderBy) > 0 {
		aliasRepl := map[string]sqlast.Expr{}
		for _, it := range items {
			if it.idx < 0 && it.name != "" {
				if _, exists := aliasRepl[it.name]; !exists {
					aliasRepl[it.name] = it.expr
				}
			}
		}
		resolved := make([]sqlast.OrderItem, len(orderBy))
		for i, o := range orderBy {
			e := o.Expr
			if cr, ok := e.(*sqlast.ColRef); ok && cr.Table == "" {
				if repl, hit := aliasRepl[strings.ToLower(cr.Name)]; hit {
					// Prefer the input column itself when the name also
					// exists in the input (SQL resolves ORDER BY names
					// against the select list first only for pure aliases).
					if _, err := pl.schema().Resolve("", cr.Name); err != nil {
						e = sqlast.CloneExpr(repl)
					}
				}
			}
			resolved[i] = sqlast.OrderItem{Expr: e, Desc: o.Desc}
		}
		pl, err = b.planOrderBy(pl, resolved)
		if err != nil {
			return nil, err
		}
	}
	if !bareStar {
		pl, err = b.planProject(pl, items)
		if err != nil {
			return nil, err
		}
	}
	if sel.Distinct {
		n := exec.NewDistinctNode(pl.node)
		rows := b.distinctEstimate(pl)
		exec.SetEstimates(n, rows, pl.node.EstCost()+evalCPU(pl.node.EstRows(), costGroupRow))
		pl = &planned{node: n, stats: pl.stats}
	}
	if sel.Limit != nil || sel.Offset != nil {
		limit := int64(-1)
		if sel.Limit != nil {
			limit = *sel.Limit
		}
		n := exec.NewLimitNode(pl.node, limit)
		if sel.Offset != nil {
			n.Offset = *sel.Offset
		}
		rows := pl.node.EstRows() - float64(n.Offset)
		if rows < 0 {
			rows = 0
		}
		if limit >= 0 {
			rows = math.Min(float64(limit), rows)
		}
		exec.SetEstimates(n, rows, pl.node.EstCost())
		pl = &planned{node: n, stats: pl.stats}
	}
	return pl, nil
}

func expandItems(items []sqlast.SelectItem, pl *planned) ([]outItem, error) {
	var out []outItem
	sch := pl.schema()
	for i, it := range items {
		switch {
		case it.Star:
			want := strings.ToLower(it.StarTable)
			matched := false
			for idx, c := range sch.Columns {
				if want != "" && c.Table != want {
					continue
				}
				matched = true
				out = append(out, outItem{idx: idx, name: c.Name, qual: c.Table})
			}
			if want != "" && !matched {
				return nil, fmt.Errorf("plan: %s.* matches no input columns", it.StarTable)
			}
		default:
			name := strings.ToLower(it.Alias)
			qual := ""
			if name == "" {
				if cr, ok := it.Expr.(*sqlast.ColRef); ok {
					name = strings.ToLower(cr.Name)
					qual = strings.ToLower(cr.Table)
				} else {
					name = fmt.Sprintf("col_%d", i+1)
				}
			}
			out = append(out, outItem{idx: -1, expr: foldConsts(it.Expr), name: name, qual: qual})
		}
	}
	return out, nil
}

// visitSkippingWindows walks an expression but does not descend into
// window expressions (whose arguments are not aggregate contexts).
func visitSkippingWindows(e sqlast.Expr, f func(sqlast.Expr)) {
	if e == nil {
		return
	}
	if _, isWin := e.(*sqlast.WindowExpr); isWin {
		f(e)
		return
	}
	f(e)
	switch e := e.(type) {
	case *sqlast.Bin:
		visitSkippingWindows(e.L, f)
		visitSkippingWindows(e.R, f)
	case *sqlast.Un:
		visitSkippingWindows(e.E, f)
	case *sqlast.IsNull:
		visitSkippingWindows(e.E, f)
	case *sqlast.Case:
		for _, w := range e.Whens {
			visitSkippingWindows(w.Cond, f)
			visitSkippingWindows(w.Then, f)
		}
		visitSkippingWindows(e.Else, f)
	case *sqlast.In:
		visitSkippingWindows(e.E, f)
		for _, x := range e.List {
			visitSkippingWindows(x, f)
		}
	case *sqlast.FuncCall:
		for _, a := range e.Args {
			visitSkippingWindows(a, f)
		}
	}
}

func itemsHaveAgg(items []outItem) bool {
	for _, it := range items {
		if it.idx >= 0 {
			continue
		}
		found := false
		visitSkippingWindows(it.expr, func(x sqlast.Expr) {
			if fc, ok := x.(*sqlast.FuncCall); ok && isAggName(fc.Name) {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

// planGrouping builds the hash-aggregation stage and rewrites the select
// items, HAVING, and ORDER BY to reference its output columns.
func (b *builder) planGrouping(sel *sqlast.SelectStmt, pl *planned, items []outItem, having sqlast.Expr, orderBy []sqlast.OrderItem, scope *cteScope) (*planned, []outItem, sqlast.Expr, []sqlast.OrderItem, error) {
	inSchema := pl.schema()

	// Collect distinct aggregate calls across items, HAVING, ORDER BY.
	var aggCalls []*sqlast.FuncCall
	seenAgg := map[string]bool{}
	collect := func(e sqlast.Expr) {
		visitSkippingWindows(e, func(x sqlast.Expr) {
			fc, ok := x.(*sqlast.FuncCall)
			if !ok || !isAggName(fc.Name) {
				return
			}
			canon := sqlast.ExprSQL(fc)
			if !seenAgg[canon] {
				seenAgg[canon] = true
				aggCalls = append(aggCalls, fc)
			}
		})
	}
	for _, it := range items {
		if it.idx < 0 {
			collect(it.expr)
		} else {
			return nil, nil, nil, nil, fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY")
		}
	}
	collect(having)
	for _, o := range orderBy {
		collect(o.Expr)
	}

	keyExprs := make([]sqlast.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		keyExprs[i] = foldConsts(g)
	}

	outSchema := &schema.Schema{}
	outStats := []*storage.ColStats{}
	keyFns := make([]*eval.Compiled, len(keyExprs))
	repl := map[string]sqlast.Expr{}
	rowsEst := 1.0
	for i, k := range keyExprs {
		f, err := eval.Compile(k, &eval.Env{Schema: inSchema})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		keyFns[i] = f
		col := schema.Column{Name: fmt.Sprintf("__key_%d", i), Kind: inferKind(k, inSchema)}
		var st *storage.ColStats
		if cr, ok := k.(*sqlast.ColRef); ok {
			col.Table, col.Name = strings.ToLower(cr.Table), strings.ToLower(cr.Name)
			st = b.statsFor(cr, pl)
		}
		outSchema.Columns = append(outSchema.Columns, col)
		outStats = append(outStats, st)
		repl[sqlast.ExprSQL(k)] = &sqlast.ColRef{Table: col.Table, Name: col.Name}
		if st != nil {
			rowsEst *= st.DistinctAfter(pl.node.EstRows())
		} else {
			rowsEst *= math.Sqrt(pl.node.EstRows() + 1)
		}
	}
	if rowsEst > pl.node.EstRows() {
		rowsEst = pl.node.EstRows()
	}
	if len(keyExprs) == 0 {
		rowsEst = 1
	}

	aggs := make([]exec.AggSpec, len(aggCalls))
	for i, fc := range aggCalls {
		spec := exec.AggSpec{Func: strings.ToLower(fc.Name), Distinct: fc.Distinct, OutName: fmt.Sprintf("__agg_%d", i)}
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, nil, nil, nil, fmt.Errorf("plan: aggregate %s takes one argument", fc.Name)
			}
			f, err := eval.Compile(fc.Args[0], &eval.Env{Schema: inSchema})
			if err != nil {
				return nil, nil, nil, nil, err
			}
			spec.Arg = f
		}
		aggs[i] = spec
		kind := types.KindFloat
		switch spec.Func {
		case "count":
			kind = types.KindInt
		case "min", "max", "sum", "avg":
			if !fc.Star {
				kind = inferKind(fc.Args[0], inSchema)
			}
		}
		outSchema.Columns = append(outSchema.Columns, schema.Column{Name: spec.OutName, Kind: kind})
		outStats = append(outStats, nil)
		repl[sqlast.ExprSQL(fc)] = &sqlast.ColRef{Name: spec.OutName}
	}

	n := exec.NewGroupNode(pl.node, outSchema, keyFns, aggs)
	exec.SetEstimates(n, rowsEst, pl.node.EstCost()+evalCPU(pl.node.EstRows(), costGroupRow))
	out := &planned{node: n, stats: outStats}

	// Rewrite consumers to reference the aggregation output.
	newItems := make([]outItem, len(items))
	for i, it := range items {
		newItems[i] = outItem{idx: -1, expr: replaceByCanon(it.expr, repl), name: it.name, qual: it.qual}
	}
	newHaving := replaceByCanon(having, repl)
	newOrder := make([]sqlast.OrderItem, len(orderBy))
	for i, o := range orderBy {
		newOrder[i] = sqlast.OrderItem{Expr: replaceByCanon(o.Expr, repl), Desc: o.Desc}
	}
	return out, newItems, newHaving, newOrder, nil
}

// planWindows extracts window expressions from the select items, groups
// them by (PARTITION BY, ORDER BY) signature, and adds one Window operator
// per signature — preceded by a sort only when the input's ordering does
// not already satisfy the signature.
func (b *builder) planWindows(pl *planned, items []outItem, orderBy []sqlast.OrderItem) (*planned, []outItem, []sqlast.OrderItem, error) {
	type winGroup struct {
		sig   string
		wins  []*sqlast.WindowExpr
		canon []string
	}
	var groups []*winGroup
	bySig := map[string]*winGroup{}
	seen := map[string]bool{}
	for _, it := range items {
		if it.idx >= 0 {
			continue
		}
		sqlast.VisitExprs(it.expr, func(x sqlast.Expr) {
			w, ok := x.(*sqlast.WindowExpr)
			if !ok {
				return
			}
			canon := sqlast.ExprSQL(w)
			if seen[canon] {
				return
			}
			seen[canon] = true
			sig := windowSignature(w)
			g := bySig[sig]
			if g == nil {
				g = &winGroup{sig: sig}
				bySig[sig] = g
				groups = append(groups, g)
			}
			g.wins = append(g.wins, w)
			g.canon = append(g.canon, canon)
		})
	}
	if len(groups) == 0 {
		return pl, items, orderBy, nil
	}

	repl := map[string]sqlast.Expr{}
	winIdx := 0
	for _, g := range groups {
		var err error
		pl, err = b.ensureWindowOrder(pl, g.wins[0])
		if err != nil {
			return nil, nil, nil, err
		}
		inSchema := pl.schema()
		partFns, err := compileList(g.wins[0].Partition, inSchema)
		if err != nil {
			return nil, nil, nil, err
		}
		orderFns := make([]*eval.Compiled, len(g.wins[0].Order))
		orderDesc := make([]bool, len(g.wins[0].Order))
		for i, o := range g.wins[0].Order {
			f, err := eval.Compile(o.Expr, &eval.Env{Schema: inSchema})
			if err != nil {
				return nil, nil, nil, err
			}
			orderFns[i] = f
			orderDesc[i] = o.Desc
		}
		outSchema := inSchema.Clone()
		outStats := append([]*storage.ColStats{}, pl.stats...)
		aggs := make([]exec.WindowAgg, len(g.wins))
		for i, w := range g.wins {
			agg, kind, err := b.buildWindowAgg(w, inSchema)
			if err != nil {
				return nil, nil, nil, err
			}
			agg.OutName = fmt.Sprintf("__win_%d", winIdx)
			aggs[i] = agg
			outSchema.Columns = append(outSchema.Columns, schema.Column{Name: agg.OutName, Kind: kind})
			outStats = append(outStats, nil)
			repl[g.canon[i]] = &sqlast.ColRef{Name: agg.OutName}
			winIdx++
		}
		n := exec.NewWindowNode(pl.node, outSchema, partFns, orderFns, orderDesc, aggs)
		cost := pl.node.EstCost() + evalCPU(pl.node.EstRows(), float64(len(aggs))*costWindowAgg)
		exec.SetEstimates(n, pl.node.EstRows(), cost)
		exec.SetOrdering(n, pl.node.Ordering())
		pl = &planned{node: n, stats: outStats}
	}

	newItems := make([]outItem, len(items))
	for i, it := range items {
		if it.idx >= 0 {
			newItems[i] = it
			continue
		}
		newItems[i] = outItem{idx: -1, expr: replaceByCanon(it.expr, repl), name: it.name, qual: it.qual}
	}
	newOrder := make([]sqlast.OrderItem, len(orderBy))
	for i, o := range orderBy {
		newOrder[i] = sqlast.OrderItem{Expr: replaceByCanon(o.Expr, repl), Desc: o.Desc}
	}
	return pl, newItems, newOrder, nil
}

func windowSignature(w *sqlast.WindowExpr) string {
	var b strings.Builder
	for _, p := range w.Partition {
		b.WriteString(sqlast.ExprSQL(p))
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, o := range w.Order {
		b.WriteString(sqlast.ExprSQL(o.Expr))
		if o.Desc {
			b.WriteString(" desc")
		}
		b.WriteByte(';')
	}
	return b.String()
}

// ensureWindowOrder inserts a sort when the input ordering does not
// already satisfy (partition keys, order keys). Shared sort orders between
// cleansing rules and application OLAP functions are detected here.
func (b *builder) ensureWindowOrder(pl *planned, w *sqlast.WindowExpr) (*planned, error) {
	inSchema := pl.schema()
	var want []exec.OrderCol
	known := true
	resolveCol := func(e sqlast.Expr, desc bool) {
		cr, ok := e.(*sqlast.ColRef)
		if !ok {
			known = false
			return
		}
		idx, err := inSchema.Resolve(cr.Table, cr.Name)
		if err != nil {
			known = false
			return
		}
		want = append(want, exec.OrderCol{Col: idx, Desc: desc})
	}
	for _, p := range w.Partition {
		resolveCol(p, false)
	}
	for _, o := range w.Order {
		resolveCol(o.Expr, o.Desc)
	}
	if known && orderingSatisfies(pl.node.Ordering(), want) {
		return pl, nil
	}
	keys := make([]*eval.Compiled, 0, len(w.Partition)+len(w.Order))
	desc := make([]bool, 0, cap(keys))
	for _, p := range w.Partition {
		f, err := eval.Compile(p, &eval.Env{Schema: inSchema})
		if err != nil {
			return nil, err
		}
		keys = append(keys, f)
		desc = append(desc, false)
	}
	for _, o := range w.Order {
		f, err := eval.Compile(o.Expr, &eval.Env{Schema: inSchema})
		if err != nil {
			return nil, err
		}
		keys = append(keys, f)
		desc = append(desc, o.Desc)
	}
	n := exec.NewSortNode(pl.node, keys, desc)
	rows := pl.node.EstRows()
	exec.SetEstimates(n, rows, pl.node.EstCost()+cpu(rows*math.Log2(rows+2)*costSortFactor))
	if known {
		exec.SetOrdering(n, want)
	}
	return &planned{node: n, stats: pl.stats}, nil
}

func orderingSatisfies(have, want []exec.OrderCol) bool {
	if len(want) == 0 {
		return true
	}
	if len(have) < len(want) {
		return false
	}
	for i, w := range want {
		if have[i] != w {
			return false
		}
	}
	return true
}

// buildWindowAgg translates one window expression into an executable
// WindowAgg with a constant-resolved frame.
func (b *builder) buildWindowAgg(w *sqlast.WindowExpr, inSchema *schema.Schema) (exec.WindowAgg, types.Kind, error) {
	fn := strings.ToLower(w.Func)
	agg := exec.WindowAgg{Func: fn}
	var kind types.Kind
	switch fn {
	case "row_number":
		kind = types.KindInt
		if w.Frame != nil {
			return agg, kind, fmt.Errorf("plan: ROW_NUMBER does not take a frame")
		}
		return agg, kind, nil
	case "count":
		kind = types.KindInt
	case "sum", "avg", "min", "max":
		if w.Arg == nil {
			return agg, kind, fmt.Errorf("plan: window %s needs an argument", strings.ToUpper(fn))
		}
		kind = inferKind(w.Arg, inSchema)
		if fn == "avg" && kind != types.KindInterval {
			kind = types.KindFloat
		}
	default:
		return agg, kind, fmt.Errorf("plan: unsupported window function %s", strings.ToUpper(fn))
	}
	if w.Arg != nil {
		f, err := eval.Compile(w.Arg, &eval.Env{Schema: inSchema})
		if err != nil {
			return agg, kind, err
		}
		agg.Arg = f
	} else if !w.Star && fn != "count" {
		return agg, kind, fmt.Errorf("plan: window %s needs an argument", strings.ToUpper(fn))
	}

	if w.Frame == nil {
		if len(w.Order) > 0 {
			agg.Frame = exec.FrameSpec{Mode: exec.FramePeers}
		} else {
			agg.Frame = exec.FrameSpec{Mode: exec.FramePartition}
		}
		return agg, kind, nil
	}
	spec := exec.FrameSpec{
		StartType: w.Frame.Start.Type,
		EndType:   w.Frame.End.Type,
	}
	if w.Frame.Unit == sqlast.FrameRows {
		spec.Mode = exec.FrameRowsMode
	} else {
		spec.Mode = exec.FrameRangeMode
		if len(w.Order) == 0 {
			return agg, kind, fmt.Errorf("plan: RANGE frame requires ORDER BY")
		}
	}
	var err error
	if spec.StartOff, err = frameOffset(w.Frame.Start, w.Frame.Unit); err != nil {
		return agg, kind, err
	}
	if spec.EndOff, err = frameOffset(w.Frame.End, w.Frame.Unit); err != nil {
		return agg, kind, err
	}
	agg.Frame = spec
	return agg, kind, nil
}

func frameOffset(fb sqlast.FrameBound, unit sqlast.FrameUnit) (int64, error) {
	if fb.Type != sqlast.BoundPreceding && fb.Type != sqlast.BoundFollowing {
		return 0, nil
	}
	c, ok := foldConsts(fb.Offset).(*sqlast.Const)
	if !ok {
		return 0, fmt.Errorf("plan: window frame offsets must be constants")
	}
	switch c.V.Kind() {
	case types.KindInt:
		if c.V.Int() < 0 {
			return 0, fmt.Errorf("plan: negative frame offset")
		}
		return c.V.Int(), nil
	case types.KindInterval:
		if unit != sqlast.FrameRange {
			return 0, fmt.Errorf("plan: interval offsets require a RANGE frame")
		}
		if c.V.IntervalUsec() < 0 {
			return 0, fmt.Errorf("plan: negative frame offset")
		}
		return c.V.IntervalUsec(), nil
	}
	return 0, fmt.Errorf("plan: unsupported frame offset kind %s", c.V.Kind())
}

func compileList(exprs []sqlast.Expr, s *schema.Schema) ([]*eval.Compiled, error) {
	out := make([]*eval.Compiled, len(exprs))
	for i, e := range exprs {
		f, err := eval.Compile(e, &eval.Env{Schema: s})
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// planProject emits the final column computation.
func (b *builder) planProject(pl *planned, items []outItem) (*planned, error) {
	inSchema := pl.schema()
	outSchema := &schema.Schema{}
	outStats := make([]*storage.ColStats, 0, len(items))
	exprs := make([]*eval.Compiled, len(items))
	inToOut := map[int]int{}
	for i, it := range items {
		var kind types.Kind
		var st *storage.ColStats
		if it.idx >= 0 {
			idx := it.idx
			exprs[i] = eval.Column(idx)
			kind = inSchema.Columns[idx].Kind
			if idx < len(pl.stats) {
				st = pl.stats[idx]
			}
			if _, dup := inToOut[idx]; !dup {
				inToOut[idx] = i
			}
		} else {
			f, err := eval.Compile(it.expr, &eval.Env{Schema: inSchema})
			if err != nil {
				return nil, err
			}
			exprs[i] = f
			kind = inferKind(it.expr, inSchema)
			if cr, ok := it.expr.(*sqlast.ColRef); ok {
				if idx, err := inSchema.Resolve(cr.Table, cr.Name); err == nil {
					if idx < len(pl.stats) {
						st = pl.stats[idx]
					}
					if _, dup := inToOut[idx]; !dup {
						inToOut[idx] = i
					}
				}
			}
		}
		outSchema.Columns = append(outSchema.Columns, schema.Column{Table: it.qual, Name: it.name, Kind: kind})
		outStats = append(outStats, st)
	}
	n := exec.NewProjectNode(pl.node, outSchema, exprs)
	exec.SetEstimates(n, pl.node.EstRows(), pl.node.EstCost()+evalCPU(pl.node.EstRows(), float64(len(items))*costProjectRow))
	// Ordering survives projection for the prefix of keys that pass through.
	var ord []exec.OrderCol
	for _, oc := range pl.node.Ordering() {
		outIdx, ok := inToOut[oc.Col]
		if !ok {
			break
		}
		ord = append(ord, exec.OrderCol{Col: outIdx, Desc: oc.Desc})
	}
	exec.SetOrdering(n, ord)
	return &planned{node: n, stats: outStats}, nil
}

func (b *builder) distinctEstimate(pl *planned) float64 {
	if pl.schema().Len() == 1 && len(pl.stats) == 1 && pl.stats[0] != nil {
		return pl.stats[0].DistinctAfter(pl.node.EstRows())
	}
	return pl.node.EstRows() * 0.5
}

func (b *builder) planOrderBy(pl *planned, orderBy []sqlast.OrderItem) (*planned, error) {
	inSchema := pl.schema()
	keys := make([]*eval.Compiled, len(orderBy))
	desc := make([]bool, len(orderBy))
	var ord []exec.OrderCol
	known := true
	for i, o := range orderBy {
		f, err := eval.Compile(o.Expr, &eval.Env{Schema: inSchema})
		if err != nil {
			return nil, err
		}
		keys[i] = f
		desc[i] = o.Desc
		if cr, ok := o.Expr.(*sqlast.ColRef); ok && known {
			if idx, err := inSchema.Resolve(cr.Table, cr.Name); err == nil {
				ord = append(ord, exec.OrderCol{Col: idx, Desc: o.Desc})
				continue
			}
		}
		known = false
	}
	n := exec.NewSortNode(pl.node, keys, desc)
	rows := pl.node.EstRows()
	exec.SetEstimates(n, rows, pl.node.EstCost()+cpu(rows*math.Log2(rows+2)*costSortFactor))
	if known {
		exec.SetOrdering(n, ord)
	}
	return &planned{node: n, stats: pl.stats}, nil
}

// inferKind derives a best-effort output kind for schema metadata.
func inferKind(e sqlast.Expr, s *schema.Schema) types.Kind {
	switch e := e.(type) {
	case *sqlast.ColRef:
		if idx, err := s.Resolve(e.Table, e.Name); err == nil {
			return s.Columns[idx].Kind
		}
	case *sqlast.Const:
		return e.V.Kind()
	case *sqlast.Bin:
		if e.Op.IsComparison() || e.Op == sqlast.OpAnd || e.Op == sqlast.OpOr {
			return types.KindBool
		}
		lk, rk := inferKind(e.L, s), inferKind(e.R, s)
		switch {
		case lk == types.KindTime && rk == types.KindTime && e.Op == sqlast.OpSub:
			return types.KindInterval
		case lk == types.KindTime || rk == types.KindTime:
			return types.KindTime
		case lk == types.KindInterval || rk == types.KindInterval:
			return types.KindInterval
		case lk == types.KindFloat || rk == types.KindFloat:
			return types.KindFloat
		default:
			return types.KindInt
		}
	case *sqlast.Un:
		if e.Op == sqlast.OpNot {
			return types.KindBool
		}
		return inferKind(e.E, s)
	case *sqlast.IsNull:
		return types.KindBool
	case *sqlast.In, *sqlast.Exists:
		return types.KindBool
	case *sqlast.Case:
		for _, w := range e.Whens {
			if k := inferKind(w.Then, s); k != types.KindNull {
				return k
			}
		}
		return inferKind(e.Else, s)
	case *sqlast.FuncCall:
		switch strings.ToLower(e.Name) {
		case "count", "length":
			return types.KindInt
		case "avg":
			if len(e.Args) == 1 && inferKind(e.Args[0], s) == types.KindInterval {
				return types.KindInterval
			}
			return types.KindFloat
		case "sum", "min", "max", "abs", "coalesce":
			if len(e.Args) > 0 {
				return inferKind(e.Args[0], s)
			}
		}
	case *sqlast.WindowExpr:
		switch strings.ToLower(e.Func) {
		case "count", "row_number":
			return types.KindInt
		case "avg":
			if e.Arg != nil && inferKind(e.Arg, s) == types.KindInterval {
				return types.KindInterval
			}
			return types.KindFloat
		default:
			if e.Arg != nil {
				return inferKind(e.Arg, s)
			}
		}
	}
	return types.KindNull
}
