package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/enginerr"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// Planner compiles statements against a database.
type Planner struct {
	DB *catalog.Database
}

// New returns a planner over db.
func New(db *catalog.Database) *Planner { return &Planner{DB: db} }

// Plan builds a physical plan for stmt.
func (p *Planner) Plan(stmt sqlast.Stmt) (exec.Node, error) {
	b := &builder{db: p.DB}
	pl, err := b.planStmt(stmt, nil)
	if err != nil {
		return nil, err
	}
	annotateMemory(pl.node)
	return pl.node, nil
}

// PlanSQL parses and plans a query string.
func (p *Planner) PlanSQL(query string) (exec.Node, error) {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	return p.Plan(stmt)
}

// planned pairs a node with per-output-column base statistics (nil entries
// where no base column traces through).
type planned struct {
	node  exec.Node
	stats []*storage.ColStats
}

func (p *planned) schema() *schema.Schema { return p.node.Schema() }

type cteScope struct {
	parent  *cteScope
	entries map[string]*planned
}

func (s *cteScope) lookup(name string) (*planned, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if e, ok := sc.entries[name]; ok {
			return e, true
		}
	}
	return nil, false
}

type builder struct {
	db *catalog.Database
}

// ---- statements ----

func (b *builder) planStmt(stmt sqlast.Stmt, scope *cteScope) (*planned, error) {
	switch s := stmt.(type) {
	case *sqlast.SelectStmt:
		return b.planSelect(s, scope)
	case *sqlast.SetOpStmt:
		l, err := b.planStmt(s.L, scope)
		if err != nil {
			return nil, err
		}
		r, err := b.planStmt(s.R, scope)
		if err != nil {
			return nil, err
		}
		switch s.Op {
		case sqlast.SetUnion:
			n, err := exec.NewUnionNode(l.node, r.node, !s.All)
			if err != nil {
				return nil, err
			}
			rows := l.node.EstRows() + r.node.EstRows()
			if !s.All {
				rows *= 0.9
			}
			exec.SetEstimates(n, rows, l.node.EstCost()+r.node.EstCost()+cpu(rows*costUnionRow))
			return &planned{node: n, stats: l.stats}, nil
		default:
			kind := exec.SetOpExcept
			rows := l.node.EstRows() * 0.5
			if s.Op == sqlast.SetIntersect {
				kind = exec.SetOpIntersect
				rows = l.node.EstRows() * 0.3
			}
			n, err := exec.NewSetOpNode(l.node, r.node, kind)
			if err != nil {
				return nil, err
			}
			exec.SetEstimates(n, rows, l.node.EstCost()+r.node.EstCost()+evalCPU(l.node.EstRows()+r.node.EstRows(), costHashRow))
			return &planned{node: n, stats: l.stats}, nil
		}
	}
	return nil, fmt.Errorf("plan: unsupported statement %T", stmt)
}

// source is one FROM element during planning.
type source struct {
	// binding names visible from this element (one for tables/subqueries,
	// several for an ANSI join subtree).
	bindings []string
	// colNames are the output column names, for unqualified resolution.
	colNames map[string]bool
	// ast retained for deferred planning (pushdown happens first).
	ast sqlast.TableExpr
	// pl is set once planned.
	pl *planned
}

func (s *source) hasBinding(name string) bool {
	for _, b := range s.bindings {
		if b == name {
			return true
		}
	}
	return false
}

func (b *builder) planSelect(sel *sqlast.SelectStmt, scope *cteScope) (*planned, error) {
	// 1. CTEs: planned once, shared by reference.
	if len(sel.With) > 0 {
		scope = &cteScope{parent: scope, entries: map[string]*planned{}}
		for _, cte := range sel.With {
			pl, err := b.planStmt(cte.Query, scope)
			if err != nil {
				return nil, fmt.Errorf("in WITH %s: %w", cte.Name, err)
			}
			scope.entries[strings.ToLower(cte.Name)] = pl
		}
	}

	// 2. Pre-resolve FROM sources (names only; planning is deferred so
	// single-source predicates can be pushed into subquery ASTs).
	sources := make([]*source, len(sel.From))
	for i, te := range sel.From {
		src, err := b.preResolve(te, scope)
		if err != nil {
			return nil, err
		}
		sources[i] = src
	}
	if len(sources) == 0 {
		// FROM-less SELECT: a single empty row.
		one := exec.NewValuesNode(schema.New(), []schema.Row{{}})
		pl := &planned{node: one}
		return b.finishSelect(sel, pl, scope)
	}

	// 3. Classify WHERE conjuncts by the sources they reference.
	conjuncts := sqlast.Conjuncts(foldConsts(sel.Where))
	perSource := make([][]sqlast.Expr, len(sources))
	var joinConjs []sqlast.Expr
	for _, c := range conjuncts {
		refs, err := referencedSources(c, sources)
		if err != nil {
			return nil, err
		}
		if len(refs) == 1 {
			perSource[refs[0]] = append(perSource[refs[0]], c)
		} else {
			joinConjs = append(joinConjs, c)
		}
	}

	// 4. Plan each source with its local predicates.
	for i, src := range sources {
		pl, err := b.planSource(src, perSource[i], scope)
		if err != nil {
			return nil, err
		}
		src.pl = pl
	}

	// 5. Join ordering (greedy) over remaining conjuncts.
	joined, err := b.orderJoins(sources, joinConjs, scope)
	if err != nil {
		return nil, err
	}

	return b.finishSelect(sel, joined, scope)
}

// preResolve determines bindings and visible column names of a FROM
// element without planning it.
func (b *builder) preResolve(te sqlast.TableExpr, scope *cteScope) (*source, error) {
	switch te := te.(type) {
	case *sqlast.TableName:
		binding := strings.ToLower(te.Binding())
		name := strings.ToLower(te.Name)
		src := &source{bindings: []string{binding}, colNames: map[string]bool{}, ast: te}
		if pl, ok := scope.lookupName(name); ok {
			for _, c := range pl.schema().Columns {
				src.colNames[c.Name] = true
			}
			return src, nil
		}
		if t, ok := b.db.Table(name); ok {
			for _, c := range t.Schema.Columns {
				src.colNames[c.Name] = true
			}
			return src, nil
		}
		if v, ok := b.db.View(name); ok {
			names, ok := OutputNames(v, b.db)
			if !ok {
				return nil, fmt.Errorf("plan: cannot determine columns of view %q", name)
			}
			for _, n := range names {
				src.colNames[n] = true
			}
			return src, nil
		}
		return nil, fmt.Errorf("plan: %w: %q", enginerr.ErrNoTable, te.Name)
	case *sqlast.SubqueryTable:
		binding := strings.ToLower(te.Alias)
		src := &source{bindings: []string{binding}, colNames: map[string]bool{}, ast: te}
		names, ok := OutputNames(te.Query, b.db)
		if !ok {
			return nil, fmt.Errorf("plan: cannot determine columns of derived table %q", te.Alias)
		}
		for _, n := range names {
			src.colNames[n] = true
		}
		return src, nil
	case *sqlast.JoinExpr:
		l, err := b.preResolve(te.Left, scope)
		if err != nil {
			return nil, err
		}
		r, err := b.preResolve(te.Right, scope)
		if err != nil {
			return nil, err
		}
		src := &source{ast: te, colNames: map[string]bool{}}
		src.bindings = append(append([]string{}, l.bindings...), r.bindings...)
		for n := range l.colNames {
			src.colNames[n] = true
		}
		for n := range r.colNames {
			src.colNames[n] = true
		}
		return src, nil
	}
	return nil, fmt.Errorf("plan: unsupported FROM element %T", te)
}

// lookupName adapts cteScope.lookup for a possibly-nil receiver.
func (s *cteScope) lookupName(name string) (*planned, bool) {
	if s == nil {
		return nil, false
	}
	return s.lookup(name)
}

// OutputNames derives the output column names of a statement without
// planning it; false when a computed column has no derivable name.
func OutputNames(stmt sqlast.Stmt, db *catalog.Database) ([]string, bool) {
	switch s := stmt.(type) {
	case *sqlast.SelectStmt:
		var out []string
		for _, it := range s.Items {
			switch {
			case it.Star:
				// Expand from FROM sources.
				for _, te := range s.From {
					names, ok := fromNames(te, it.StarTable, s, db)
					if !ok {
						return nil, false
					}
					out = append(out, names...)
				}
			case it.Alias != "":
				out = append(out, strings.ToLower(it.Alias))
			default:
				if cr, ok := it.Expr.(*sqlast.ColRef); ok {
					out = append(out, strings.ToLower(cr.Name))
				} else {
					return nil, false
				}
			}
		}
		return out, true
	case *sqlast.SetOpStmt:
		return OutputNames(s.L, db)
	}
	return nil, false
}

func fromNames(te sqlast.TableExpr, starTable string, sel *sqlast.SelectStmt, db *catalog.Database) ([]string, bool) {
	switch te := te.(type) {
	case *sqlast.TableName:
		if starTable != "" && !strings.EqualFold(te.Binding(), starTable) {
			return nil, true
		}
		name := strings.ToLower(te.Name)
		for _, cte := range sel.With {
			if strings.ToLower(cte.Name) == name {
				return OutputNames(cte.Query, db)
			}
		}
		if t, ok := db.Table(name); ok {
			var out []string
			for _, c := range t.Schema.Columns {
				out = append(out, c.Name)
			}
			return out, true
		}
		if v, ok := db.View(name); ok {
			return OutputNames(v, db)
		}
		return nil, false
	case *sqlast.SubqueryTable:
		if starTable != "" && !strings.EqualFold(te.Alias, starTable) {
			return nil, true
		}
		return OutputNames(te.Query, db)
	case *sqlast.JoinExpr:
		l, ok := fromNames(te.Left, starTable, sel, db)
		if !ok {
			return nil, false
		}
		r, ok := fromNames(te.Right, starTable, sel, db)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	}
	return nil, false
}

// referencedSources returns the indices of sources a conjunct references.
func referencedSources(e sqlast.Expr, sources []*source) ([]int, error) {
	seen := map[int]bool{}
	var resolveErr error
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		cr, ok := x.(*sqlast.ColRef)
		if !ok || resolveErr != nil {
			return
		}
		if cr.Table != "" {
			for i, s := range sources {
				if s.hasBinding(strings.ToLower(cr.Table)) {
					seen[i] = true
					return
				}
			}
			resolveErr = fmt.Errorf("plan: unknown table qualifier %q", cr.Table)
			return
		}
		found := -1
		for i, s := range sources {
			if s.colNames[strings.ToLower(cr.Name)] {
				if found >= 0 {
					resolveErr = fmt.Errorf("plan: ambiguous column %q", cr.Name)
					return
				}
				found = i
			}
		}
		if found < 0 {
			resolveErr = fmt.Errorf("plan: unknown column %q", cr.Name)
			return
		}
		seen[found] = true
	})
	if resolveErr != nil {
		return nil, resolveErr
	}
	out := make([]int, 0, len(seen))
	for i := range sources {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out, nil
}

// planSource plans one FROM element with its local predicates, pushing
// them into subquery/view bodies when safe, or choosing an index scan on a
// base table.
func (b *builder) planSource(src *source, conjs []sqlast.Expr, scope *cteScope) (*planned, error) {
	switch te := src.ast.(type) {
	case *sqlast.TableName:
		binding := strings.ToLower(te.Binding())
		name := strings.ToLower(te.Name)
		if cte, ok := scope.lookupName(name); ok {
			node := exec.NewRequalifyNode(cte.node, binding)
			pl := &planned{node: node, stats: cte.stats}
			return b.applyFilter(pl, conjs, scope)
		}
		if t, ok := b.db.Table(name); ok {
			return b.planScan(t, binding, conjs, scope)
		}
		if v, ok := b.db.View(name); ok {
			body := sqlast.CloneStmt(v)
			body, rest := pushIntoStmt(body, conjs, binding, b.db)
			pl, err := b.planStmt(body, scope)
			if err != nil {
				return nil, fmt.Errorf("in view %s: %w", name, err)
			}
			pl = requalify(pl, binding)
			return b.applyFilter(pl, rest, scope)
		}
		return nil, fmt.Errorf("plan: %w: %q", enginerr.ErrNoTable, te.Name)
	case *sqlast.SubqueryTable:
		binding := strings.ToLower(te.Alias)
		body := sqlast.CloneStmt(te.Query)
		body, rest := pushIntoStmt(body, conjs, binding, b.db)
		pl, err := b.planStmt(body, scope)
		if err != nil {
			return nil, err
		}
		pl = requalify(pl, binding)
		return b.applyFilter(pl, rest, scope)
	case *sqlast.JoinExpr:
		pl, err := b.planJoinExpr(te, scope)
		if err != nil {
			return nil, err
		}
		return b.applyFilter(pl, conjs, scope)
	}
	return nil, fmt.Errorf("plan: unsupported FROM element %T", src.ast)
}

func requalify(pl *planned, binding string) *planned {
	return &planned{node: exec.NewRequalifyNode(pl.node, binding), stats: pl.stats}
}

// planJoinExpr plans an ANSI join subtree directly.
func (b *builder) planJoinExpr(j *sqlast.JoinExpr, scope *cteScope) (*planned, error) {
	lsrc, err := b.preResolve(j.Left, scope)
	if err != nil {
		return nil, err
	}
	rsrc, err := b.preResolve(j.Right, scope)
	if err != nil {
		return nil, err
	}
	l, err := b.planSource(lsrc, nil, scope)
	if err != nil {
		return nil, err
	}
	r, err := b.planSource(rsrc, nil, scope)
	if err != nil {
		return nil, err
	}
	kind := exec.JoinKindInner
	if j.Type == sqlast.JoinLeft {
		kind = exec.JoinKindLeft
	}
	return b.buildJoin(l, r, sqlast.Conjuncts(foldConsts(j.On)), kind)
}

// applyFilter layers remaining conjuncts over a planned node.
func (b *builder) applyFilter(pl *planned, conjs []sqlast.Expr, scope *cteScope) (*planned, error) {
	if len(conjs) == 0 {
		return pl, nil
	}
	expr := sqlast.And(conjs...)
	return b.filterNode(pl, expr, scope)
}

// filterNode builds a (possibly lazy) filter over pl.
func (b *builder) filterNode(pl *planned, expr sqlast.Expr, scope *cteScope) (*planned, error) {
	subplans, subCost, err := b.planSubqueries(expr, scope)
	if err != nil {
		return nil, err
	}
	sel := b.selectivity(expr, pl, subplans)
	rows := pl.node.EstRows() * sel
	cost := pl.node.EstCost() + evalCPU(pl.node.EstRows(), costFilterRow) + subCost
	desc := abbreviate(sqlast.ExprSQL(expr))
	if len(subplans) > 0 {
		n := &lazyFilterNode{input: pl.node, expr: expr, subplans: subplans, desc: desc, estRows: rows, estCost: cost}
		return &planned{node: n, stats: pl.stats}, nil
	}
	pred, err := eval.Compile(expr, &eval.Env{Schema: pl.schema()})
	if err != nil {
		return nil, err
	}
	n := exec.NewFilterNode(pl.node, pred, desc)
	exec.SetEstimates(n, rows, cost)
	return &planned{node: n, stats: pl.stats}, nil
}

// planSubqueries plans every IN/EXISTS subquery inside expr.
func (b *builder) planSubqueries(expr sqlast.Expr, scope *cteScope) (map[sqlast.Stmt]exec.Node, float64, error) {
	var stmts []sqlast.Stmt
	sqlast.VisitExprs(expr, func(x sqlast.Expr) {
		switch x := x.(type) {
		case *sqlast.In:
			if x.Sub != nil {
				stmts = append(stmts, x.Sub)
			}
		case *sqlast.Exists:
			stmts = append(stmts, x.Sub)
		}
	})
	if len(stmts) == 0 {
		return nil, 0, nil
	}
	plans := make(map[sqlast.Stmt]exec.Node, len(stmts))
	cost := 0.0
	for _, s := range stmts {
		pl, err := b.planStmt(s, scope)
		if err != nil {
			return nil, 0, fmt.Errorf("in subquery: %w", err)
		}
		plans[s] = pl.node
		cost += pl.node.EstCost()
	}
	return plans, cost, nil
}

func abbreviate(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
