package plan

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/sqlast"
	"repro/internal/storage"
)

// component is a set of sources already combined into one plan during join
// ordering.
type component struct {
	pl       *planned
	bindings map[string]bool
}

func (c *component) covers(names []string) bool {
	for _, n := range names {
		if !c.bindings[n] {
			return false
		}
	}
	return true
}

// orderJoins combines planned sources with the remaining multi-source
// conjuncts using a greedy smallest-output-first heuristic, building hash
// joins for equality conjuncts and nested loops otherwise. The larger side
// becomes the probe (left) input so its physical ordering — typically the
// reads table in sequence order — survives the join, which is what lets a
// downstream window operator skip its sort ("order sharing").
func (b *builder) orderJoins(sources []*source, conjs []sqlast.Expr, scope *cteScope) (*planned, error) {
	comps := make([]*component, len(sources))
	for i, s := range sources {
		bind := map[string]bool{}
		for _, n := range s.bindings {
			bind[n] = true
		}
		comps[i] = &component{pl: s.pl, bindings: bind}
	}
	pending := append([]sqlast.Expr{}, conjs...)

	for len(comps) > 1 {
		// Choose the pair with the lowest estimated join output; prefer
		// pairs connected by at least one conjunct.
		bestI, bestJ := -1, -1
		bestRows := 0.0
		bestConnected := false
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				applicable := conjunctsFor(pending, comps[i], comps[j])
				connected := len(applicable) > 0
				rows := b.joinEstimate(comps[i].pl, comps[j].pl, applicable)
				if bestI < 0 || (connected && !bestConnected) || (connected == bestConnected && rows < bestRows) {
					bestI, bestJ, bestRows, bestConnected = i, j, rows, connected
				}
			}
		}
		ci, cj := comps[bestI], comps[bestJ]
		applicable := conjunctsFor(pending, ci, cj)
		merged, err := b.buildJoinComponents(ci, cj, applicable)
		if err != nil {
			return nil, err
		}
		// Remove consumed conjuncts.
		consumed := map[sqlast.Expr]bool{}
		for _, c := range applicable {
			consumed[c] = true
		}
		next := pending[:0]
		for _, c := range pending {
			if !consumed[c] {
				next = append(next, c)
			}
		}
		pending = next
		// Replace the two components with the merged one.
		comps[bestI] = merged
		comps = append(comps[:bestJ], comps[bestJ+1:]...)
	}
	result := comps[0]
	if len(pending) > 0 {
		// Conjuncts that became applicable only at the end (or reference
		// subqueries) filter the final join output.
		return b.applyFilter(result.pl, pending, scope)
	}
	return result.pl, nil
}

// conjunctsFor returns pending conjuncts fully covered by the union of two
// components but not by either alone.
func conjunctsFor(pending []sqlast.Expr, a, c *component) []sqlast.Expr {
	var out []sqlast.Expr
	for _, e := range pending {
		names := bindingsOf(e)
		coveredBoth := true
		for _, n := range names {
			if !a.bindings[n] && !c.bindings[n] {
				coveredBoth = false
				break
			}
		}
		if coveredBoth && !a.covers(names) && !c.covers(names) {
			out = append(out, e)
		}
	}
	return out
}

func bindingsOf(e sqlast.Expr) []string {
	seen := map[string]bool{}
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		if cr, ok := x.(*sqlast.ColRef); ok && cr.Table != "" {
			seen[strings.ToLower(cr.Table)] = true
		}
	})
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	return out
}

func (b *builder) buildJoinComponents(ci, cj *component, conjs []sqlast.Expr) (*component, error) {
	pl, err := b.buildJoin(ci.pl, cj.pl, conjs, exec.JoinKindInner)
	if err != nil {
		return nil, err
	}
	bind := map[string]bool{}
	for n := range ci.bindings {
		bind[n] = true
	}
	for n := range cj.bindings {
		bind[n] = true
	}
	return &component{pl: pl, bindings: bind}, nil
}

// buildJoin constructs a hash join (when equality conjuncts exist) or a
// nested-loop join between two planned inputs. The bigger input probes.
func (b *builder) buildJoin(l, r *planned, conjs []sqlast.Expr, kind exec.JoinKind) (*planned, error) {
	// LEFT JOIN must keep the AST's left side on the left.
	if kind == exec.JoinKindInner && l.node.EstRows() < r.node.EstRows() {
		l, r = r, l
	}
	var lKeys, rKeys []sqlast.Expr
	var residual []sqlast.Expr
	for _, c := range conjs {
		le, re, ok := equiKey(c, l, r)
		if ok {
			lKeys = append(lKeys, le)
			rKeys = append(rKeys, re)
		} else {
			residual = append(residual, c)
		}
	}
	outSchema := joinedSchema(l, r)
	stats := append(append([]*storage.ColStats{}, l.stats...), r.stats...)
	rows := b.joinEstimate(l, r, conjs)

	if len(lKeys) > 0 {
		lFns, err := compileAll(lKeys, l.schema())
		if err != nil {
			return nil, err
		}
		rFns, err := compileAll(rKeys, r.schema())
		if err != nil {
			return nil, err
		}
		var res *eval.Compiled
		desc := abbreviate(sqlast.ExprSQL(sqlast.And(conjs...)))
		if len(residual) > 0 {
			f, err := eval.Compile(sqlast.And(residual...), &eval.Env{Schema: outSchema})
			if err != nil {
				return nil, err
			}
			res = f
		}
		n := exec.NewHashJoinNode(l.node, r.node, lFns, rFns, kind, res, desc)
		// A build side that is a pure base-table scan (no index bounds,
		// no fused predicate) produces the same table on every run until
		// a catalog mutation bumps the epoch — mark it reusable so
		// prepared statements probing a static dimension table skip the
		// rebuild (the executor still requires Ctx.EnableBuildReuse).
		if sc, ok := r.node.(*exec.ScanNode); ok && sc.IndexOrd < 0 && sc.Pred == nil {
			n.CacheBuild = true
		}
		cost := l.node.EstCost() + r.node.EstCost() + evalCPU(l.node.EstRows()+r.node.EstRows(), costHashRow)
		exec.SetEstimates(n, rows, cost)
		exec.SetOrdering(n, l.node.Ordering())
		return &planned{node: n, stats: stats}, nil
	}
	if kind == exec.JoinKindLeft {
		return nil, fmt.Errorf("plan: LEFT JOIN requires an equality condition")
	}
	var pred *eval.Compiled
	desc := "cross"
	if len(residual) > 0 {
		desc = abbreviate(sqlast.ExprSQL(sqlast.And(residual...)))
		f, err := eval.Compile(sqlast.And(residual...), &eval.Env{Schema: outSchema})
		if err != nil {
			return nil, err
		}
		pred = f
	}
	n := exec.NewNestedLoopJoinNode(l.node, r.node, pred, desc)
	cost := l.node.EstCost() + r.node.EstCost() + cpu(l.node.EstRows()*r.node.EstRows()*0.3)
	exec.SetEstimates(n, rows, cost)
	return &planned{node: n, stats: stats}, nil
}

func joinedSchema(l, r *planned) *sschema {
	return concatSchemas(l, r)
}

// equiKey matches "x = y" where x resolves only on l and y only on r (or
// vice versa); returns the per-side key expressions.
func equiKey(c sqlast.Expr, l, r *planned) (sqlast.Expr, sqlast.Expr, bool) {
	bin, ok := c.(*sqlast.Bin)
	if !ok || bin.Op != sqlast.OpEq {
		return nil, nil, false
	}
	lOnL := resolvesOn(bin.L, l)
	lOnR := resolvesOn(bin.L, r)
	rOnL := resolvesOn(bin.R, l)
	rOnR := resolvesOn(bin.R, r)
	switch {
	case lOnL && rOnR:
		return bin.L, bin.R, true
	case lOnR && rOnL:
		return bin.R, bin.L, true
	}
	return nil, nil, false
}

// resolvesOn reports whether every column in e resolves against pl's
// schema (and e has at least one column).
func resolvesOn(e sqlast.Expr, pl *planned) bool {
	hasCol := false
	allOK := true
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		if cr, ok := x.(*sqlast.ColRef); ok {
			hasCol = true
			if _, err := pl.schema().Resolve(cr.Table, cr.Name); err != nil {
				allOK = false
			}
		}
	})
	return hasCol && allOK
}

// joinEstimate approximates the output cardinality of joining l and r
// under the given conjuncts (1/max-distinct per equality, default
// selectivity otherwise).
func (b *builder) joinEstimate(l, r *planned, conjs []sqlast.Expr) float64 {
	rows := l.node.EstRows() * r.node.EstRows()
	if rows < 1 {
		rows = 1
	}
	for _, c := range conjs {
		if le, re, ok := equiKey(c, l, r); ok {
			dl := distinctOf(le, l)
			dr := distinctOf(re, r)
			d := dl
			if dr > d {
				d = dr
			}
			if d > 0 {
				rows /= d
			} else {
				rows *= 0.1
			}
		} else {
			rows *= defaultSel
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// distinctOf estimates distinct values of a key expression on one side.
func distinctOf(e sqlast.Expr, pl *planned) float64 {
	cr, ok := e.(*sqlast.ColRef)
	if !ok {
		return 0
	}
	idx, err := pl.schema().Resolve(cr.Table, cr.Name)
	if err != nil || idx >= len(pl.stats) || pl.stats[idx] == nil {
		return 0
	}
	return pl.stats[idx].DistinctAfter(pl.node.EstRows())
}

func compileAll(exprs []sqlast.Expr, s *sschema) ([]*eval.Compiled, error) {
	out := make([]*eval.Compiled, len(exprs))
	for i, e := range exprs {
		f, err := eval.Compile(e, &eval.Env{Schema: s})
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}
