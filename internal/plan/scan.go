package plan

import (
	"math"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/sqlast"
	"repro/internal/storage"
	"repro/internal/types"
)

// Cost model constants, in abstract row-touch units. Only relative
// magnitudes matter: they decide index-vs-sequential scans, join orders,
// and which candidate rewrite the rewriter submits.
const (
	costSeqRow     = 1.0  // sequential scan, per row
	costIndexRow   = 2.5  // index range scan, per matched row (random access)
	costFilterRow  = 0.2  // predicate evaluation, per input row
	costSortFactor = 0.35 // n·log₂(n) multiplier
	costWindowAgg  = 0.6  // per row per scalar aggregate
	costHashRow    = 1.2  // hash build/probe, per row
	costProjectRow = 0.15 // per output row per column (approx)
	costGroupRow   = 1.5  // hash aggregation, per input row
	costUnionRow   = 0.2

	// Vectorized evaluation: each MorselSize-row batch pays one kernel
	// dispatch, and the per-row expression work shrinks because the
	// interpreter overhead (closure calls, per-row dispatch) amortizes
	// over the batch.
	costBatchDispatch = 4.0 // per vector-kernel batch
	costVecDiscount   = 0.6 // fraction of row-at-a-time eval work left
)

// planScan plans a base-table access: an index range scan when a sargable
// predicate makes one attractive, otherwise a sequential scan with the
// subquery-free predicate fused into the scan operator itself — the fused
// scan evaluates it over the columnar segment vectors and uses per-column
// range summaries (zone preds) derived from the sargable conjuncts to
// skip whole segments via their zone maps. Conjuncts containing
// subqueries stay in a filter on top.
func (b *builder) planScan(t *storage.Table, binding string, conjs []sqlast.Expr, scope *cteScope) (*planned, error) {
	stats := make([]*storage.ColStats, t.Schema.Len())
	for i := range stats {
		stats[i] = t.Stats(i)
	}
	total := float64(t.RowCount())

	// Gather sargable bounds per column — every column feeds the zone
	// preds of a fused sequential scan; indexed ones additionally compete
	// for an index range scan.
	type colBounds struct {
		ord    int
		bounds storage.Bounds
		used   map[sqlast.Expr]bool
		sel    float64
	}
	byCol := map[int]*colBounds{}
	for _, c := range conjs {
		ord, op, lit, ok := sargable(c, t, binding)
		if !ok {
			continue
		}
		cb := byCol[ord]
		if cb == nil {
			cb = &colBounds{ord: ord, used: map[sqlast.Expr]bool{}}
			byCol[ord] = cb
		}
		v := lit
		switch op {
		case sqlast.OpEq:
			cb.bounds.Equals = &v
		case sqlast.OpLt:
			tightenHi(&cb.bounds, v, false)
		case sqlast.OpLe:
			tightenHi(&cb.bounds, v, true)
		case sqlast.OpGt:
			tightenLo(&cb.bounds, v, false)
		case sqlast.OpGe:
			tightenLo(&cb.bounds, v, true)
		default:
			continue
		}
		cb.used[c] = true
	}

	// Choose the most selective indexed column.
	var best *colBounds
	for _, cb := range byCol {
		cb.sel = boundsSelectivity(stats[cb.ord], cb.bounds)
		if !t.HasIndex(cb.ord) {
			continue
		}
		if best == nil || cb.sel < best.sel {
			best = cb
		}
	}

	scan := exec.NewScanNode(t, binding)
	pl := &planned{stats: stats}

	// Split the conjuncts a fused scan could take (no subqueries) from
	// those that need the filter machinery above the scan. Zone preds may
	// only summarize conjuncts that are actually fused: the scan skips a
	// segment on their evidence, so each must be implied by Pred.
	var fuse, residual []sqlast.Expr
	for _, c := range conjs {
		if hasSubquery(c) {
			residual = append(residual, c)
		} else {
			fuse = append(fuse, c)
		}
	}
	var zone []storage.ZonePred
	for _, cb := range byCol {
		zone = append(zone, storage.ZonePred{Col: cb.ord, Bounds: cb.bounds})
	}

	// Zone-aware sequential cost: consult the actual segment zone maps for
	// how many rows survive pruning (safe at plan time — the plan cache is
	// keyed by catalog epoch, so any data change replans). The fused
	// predicate itself is charged at the filter rate over surviving rows.
	seqRows := total
	if len(zone) > 0 && len(fuse) > 0 {
		kept := 0
		for _, seg := range t.Segments() {
			if seg.CanMatchAll(zone) {
				kept += seg.Len()
			}
		}
		seqRows = float64(kept)
	}
	seqCost := cpu(seqRows * costSeqRow)
	if len(fuse) > 0 {
		seqCost += evalCPU(seqRows, costFilterRow)
	}

	if best != nil {
		matched := total * best.sel
		idxCost := cpu(matched*costIndexRow + math.Log2(total+2))
		// The index-vs-seq decision compares row touches only (the fused
		// predicate's eval cost applies to the residual filter of the
		// index path just as much); zone pruning still discounts the
		// sequential side via seqRows.
		if idxCost < cpu(seqRows*costSeqRow) {
			scan.IndexOrd = best.ord
			scan.Bounds = best.bounds
			exec.SetEstimates(scan, matched, idxCost)
			exec.SetOrdering(scan, []exec.OrderCol{{Col: best.ord}})
			var remaining []sqlast.Expr
			for _, c := range conjs {
				if !best.used[c] {
					remaining = append(remaining, c)
				}
			}
			pl.node = scan
			return b.applyFilter(pl, remaining, scope)
		}
	}

	pl.node = scan
	if len(fuse) == 0 {
		exec.SetEstimates(scan, total, seqCost)
		return b.applyFilter(pl, residual, scope)
	}
	expr := sqlast.And(fuse...)
	pred, err := eval.Compile(expr, &eval.Env{Schema: scan.Schema()})
	if err != nil {
		return nil, err
	}
	sel := b.selectivity(expr, pl, nil)
	scan.Pred = pred
	scan.PredDesc = abbreviate(sqlast.ExprSQL(expr))
	scan.Zone = zone
	exec.SetEstimates(scan, total*sel, seqCost)
	return b.applyFilter(pl, residual, scope)
}

// hasSubquery reports whether the expression contains an IN or EXISTS
// subquery (which the scan cannot evaluate itself).
func hasSubquery(e sqlast.Expr) bool {
	found := false
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		switch x := x.(type) {
		case *sqlast.In:
			if x.Sub != nil {
				found = true
			}
		case *sqlast.Exists:
			found = true
		}
	})
	return found
}

// sargable matches "col op literal" (or flipped) on the given table
// binding and returns the column ordinal, normalized operator, and value.
func sargable(e sqlast.Expr, t *storage.Table, binding string) (int, sqlast.BinOp, types.Value, bool) {
	bin, ok := e.(*sqlast.Bin)
	if !ok || !bin.Op.IsComparison() || bin.Op == sqlast.OpNe {
		return 0, 0, types.Null, false
	}
	cr, lit, op := matchColConst(bin)
	if cr == nil || lit == nil || lit.V.IsNull() {
		return 0, 0, types.Null, false
	}
	if cr.Table != "" && cr.Table != binding {
		return 0, 0, types.Null, false
	}
	ord := t.Schema.IndexOf(cr.Name)
	if ord < 0 {
		return 0, 0, types.Null, false
	}
	return ord, op, lit.V, true
}

// matchColConst extracts (colref, literal, op-with-col-on-left).
func matchColConst(bin *sqlast.Bin) (*sqlast.ColRef, *sqlast.Const, sqlast.BinOp) {
	if cr, ok := bin.L.(*sqlast.ColRef); ok {
		if c, ok := bin.R.(*sqlast.Const); ok {
			return cr, c, bin.Op
		}
	}
	if cr, ok := bin.R.(*sqlast.ColRef); ok {
		if c, ok := bin.L.(*sqlast.Const); ok {
			return cr, c, bin.Op.Flip()
		}
	}
	return nil, nil, bin.Op
}

func tightenLo(b *storage.Bounds, v types.Value, incl bool) {
	if b.Lo == nil {
		b.Lo, b.LoIncl = &v, incl
		return
	}
	c, err := types.Compare(v, *b.Lo)
	if err != nil {
		return
	}
	if c > 0 || (c == 0 && !incl) {
		b.Lo, b.LoIncl = &v, incl
	}
}

func tightenHi(b *storage.Bounds, v types.Value, incl bool) {
	if b.Hi == nil {
		b.Hi, b.HiIncl = &v, incl
		return
	}
	c, err := types.Compare(v, *b.Hi)
	if err != nil {
		return
	}
	if c < 0 || (c == 0 && !incl) {
		b.Hi, b.HiIncl = &v, incl
	}
}

func boundsSelectivity(st *storage.ColStats, b storage.Bounds) float64 {
	if b.Equals != nil {
		return st.EqSelectivity()
	}
	return st.RangeSelectivity(b.Lo, b.Hi)
}
