package plan

import (
	"math"

	"repro/internal/exec"
	"repro/internal/sqlast"
	"repro/internal/storage"
	"repro/internal/types"
)

// Cost model constants, in abstract row-touch units. Only relative
// magnitudes matter: they decide index-vs-sequential scans, join orders,
// and which candidate rewrite the rewriter submits.
const (
	costSeqRow     = 1.0  // sequential scan, per row
	costIndexRow   = 2.5  // index range scan, per matched row (random access)
	costFilterRow  = 0.2  // predicate evaluation, per input row
	costSortFactor = 0.35 // n·log₂(n) multiplier
	costWindowAgg  = 0.6  // per row per scalar aggregate
	costHashRow    = 1.2  // hash build/probe, per row
	costProjectRow = 0.15 // per output row per column (approx)
	costGroupRow   = 1.5  // hash aggregation, per input row
	costUnionRow   = 0.2

	// Vectorized evaluation: each MorselSize-row batch pays one kernel
	// dispatch, and the per-row expression work shrinks because the
	// interpreter overhead (closure calls, per-row dispatch) amortizes
	// over the batch.
	costBatchDispatch = 4.0 // per vector-kernel batch
	costVecDiscount   = 0.6 // fraction of row-at-a-time eval work left
)

// planScan plans a base-table access: an index range scan when a sargable
// predicate makes one attractive, otherwise a sequential scan, with the
// residual predicate filtered on top.
func (b *builder) planScan(t *storage.Table, binding string, conjs []sqlast.Expr, scope *cteScope) (*planned, error) {
	stats := make([]*storage.ColStats, t.Schema.Len())
	for i := range stats {
		stats[i] = t.Stats(i)
	}
	total := float64(t.RowCount())

	// Gather sargable bounds per indexed column.
	type colBounds struct {
		ord    int
		bounds storage.Bounds
		used   map[sqlast.Expr]bool
		sel    float64
	}
	byCol := map[int]*colBounds{}
	for _, c := range conjs {
		ord, op, lit, ok := sargable(c, t, binding)
		if !ok || !t.HasIndex(ord) {
			continue
		}
		cb := byCol[ord]
		if cb == nil {
			cb = &colBounds{ord: ord, used: map[sqlast.Expr]bool{}}
			byCol[ord] = cb
		}
		v := lit
		switch op {
		case sqlast.OpEq:
			cb.bounds.Equals = &v
		case sqlast.OpLt:
			tightenHi(&cb.bounds, v, false)
		case sqlast.OpLe:
			tightenHi(&cb.bounds, v, true)
		case sqlast.OpGt:
			tightenLo(&cb.bounds, v, false)
		case sqlast.OpGe:
			tightenLo(&cb.bounds, v, true)
		default:
			continue
		}
		cb.used[c] = true
	}

	// Choose the most selective indexed column.
	var best *colBounds
	for _, cb := range byCol {
		cb.sel = boundsSelectivity(stats[cb.ord], cb.bounds)
		if best == nil || cb.sel < best.sel {
			best = cb
		}
	}

	scan := exec.NewScanNode(t, binding)
	pl := &planned{stats: stats}
	remaining := conjs
	if best != nil {
		matched := total * best.sel
		idxCost := cpu(matched*costIndexRow + math.Log2(total+2))
		if idxCost < cpu(total*costSeqRow) {
			scan.IndexOrd = best.ord
			scan.Bounds = best.bounds
			exec.SetEstimates(scan, matched, idxCost)
			exec.SetOrdering(scan, []exec.OrderCol{{Col: best.ord}})
			remaining = nil
			for _, c := range conjs {
				if !best.used[c] {
					remaining = append(remaining, c)
				}
			}
			pl.node = scan
			return b.applyFilter(pl, remaining, scope)
		}
	}
	exec.SetEstimates(scan, total, cpu(total*costSeqRow))
	pl.node = scan
	return b.applyFilter(pl, remaining, scope)
}

// sargable matches "col op literal" (or flipped) on the given table
// binding and returns the column ordinal, normalized operator, and value.
func sargable(e sqlast.Expr, t *storage.Table, binding string) (int, sqlast.BinOp, types.Value, bool) {
	bin, ok := e.(*sqlast.Bin)
	if !ok || !bin.Op.IsComparison() || bin.Op == sqlast.OpNe {
		return 0, 0, types.Null, false
	}
	cr, lit, op := matchColConst(bin)
	if cr == nil || lit == nil || lit.V.IsNull() {
		return 0, 0, types.Null, false
	}
	if cr.Table != "" && cr.Table != binding {
		return 0, 0, types.Null, false
	}
	ord := t.Schema.IndexOf(cr.Name)
	if ord < 0 {
		return 0, 0, types.Null, false
	}
	return ord, op, lit.V, true
}

// matchColConst extracts (colref, literal, op-with-col-on-left).
func matchColConst(bin *sqlast.Bin) (*sqlast.ColRef, *sqlast.Const, sqlast.BinOp) {
	if cr, ok := bin.L.(*sqlast.ColRef); ok {
		if c, ok := bin.R.(*sqlast.Const); ok {
			return cr, c, bin.Op
		}
	}
	if cr, ok := bin.R.(*sqlast.ColRef); ok {
		if c, ok := bin.L.(*sqlast.Const); ok {
			return cr, c, bin.Op.Flip()
		}
	}
	return nil, nil, bin.Op
}

func tightenLo(b *storage.Bounds, v types.Value, incl bool) {
	if b.Lo == nil {
		b.Lo, b.LoIncl = &v, incl
		return
	}
	c, err := types.Compare(v, *b.Lo)
	if err != nil {
		return
	}
	if c > 0 || (c == 0 && !incl) {
		b.Lo, b.LoIncl = &v, incl
	}
}

func tightenHi(b *storage.Bounds, v types.Value, incl bool) {
	if b.Hi == nil {
		b.Hi, b.HiIncl = &v, incl
		return
	}
	c, err := types.Compare(v, *b.Hi)
	if err != nil {
		return
	}
	if c < 0 || (c == 0 && !incl) {
		b.Hi, b.HiIncl = &v, incl
	}
}

func boundsSelectivity(st *storage.ColStats, b storage.Bounds) float64 {
	if b.Equals != nil {
		return st.EqSelectivity()
	}
	return st.RangeSelectivity(b.Lo, b.Hi)
}
