package plan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/exec"
)

// Garbage and near-miss inputs must produce errors, never panics, at any
// stage: parse, plan, or execute.
func TestNoPanicOnHostileInput(t *testing.T) {
	db := testDB(t)
	planner := New(db)

	hostile := []string{
		"", ";", "select", "select;", "select * from",
		"select * from reads reads reads",
		"select * from reads where",
		"select * from reads where v = ",
		"select * from reads group by",
		"select * from reads order by",
		"select count(distinct) from reads",
		"select max() over () from reads",
		"select * from (select * from reads",
		"with v as select * from reads select * from v",
		"select * from reads union select epc from reads", // arity mismatch
		"select epc from reads union all select epc, v from reads",
		"select v/0 from reads",
		"select epc + 1 from reads",             // string + int
		"select * from reads where epc > rtime", // string vs time
		"select max(v) over (partition by epc order by rtime desc range between 1 preceding and current row) from reads",
		"select a.b.c from reads",
		"select * from reads limit -1",
		"select substr(epc) from reads",
		"select nosuch(v) from reads",
		"select max(rtime) over (partition by epc order by rtime rows between v preceding and current row) from reads",
	}
	for _, q := range hostile {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", q, r)
				}
			}()
			node, err := planner.PlanSQL(q)
			if err != nil {
				return // expected path
			}
			// Some inputs plan fine and must fail (or succeed) cleanly at
			// execution.
			_, _ = exec.Run(exec.NewCtx(), node)
		}()
	}
}

// Random token soup: nothing may panic.
func TestNoPanicOnTokenSoup(t *testing.T) {
	db := testDB(t)
	planner := New(db)
	tokens := []string{
		"select", "from", "where", "reads", "locs", "epc", "rtime", "v",
		"(", ")", ",", "*", "=", "<", "+", "-", "'x'", "1", "5 mins",
		"group", "by", "order", "limit", "union", "all", "join", "on",
		"max", "over", "partition", "rows", "preceding", "and", "or", "not",
		"in", "is", "null", "like", "case", "when", "then", "end", "distinct",
	}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tokens[rng.Intn(len(tokens))]
		}
		q := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on generated query %q: %v", q, r)
				}
			}()
			node, err := planner.PlanSQL(q)
			if err != nil {
				return
			}
			_, _ = exec.Run(exec.NewCtx(), node)
		}()
	}
}
