package plan

import (
	"math"

	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/storage"
)

// sschema is a local alias used where the schema package name would
// collide with variables.
type sschema = schema.Schema

const defaultSel = 1.0 / 3

// costDOP is the effective degree of parallelism the cost model assumes:
// morsel-driven workers overlap but pay coordination overhead, so each
// extra core contributes 0.75 of a serial core, capped at 16 (memory
// bandwidth bounds scan-heavy operators well before wide machines run
// out of cores). It reads the process-wide exec.Parallelism knob at plan
// time; per-query overrides do not replan.
func costDOP() float64 {
	p := exec.Parallelism
	if p > 16 {
		p = 16
	}
	if p <= 1 {
		return 1
	}
	return 1 + 0.75*float64(p-1)
}

// cpu scales an operator's CPU work term by the expected parallel
// speedup. Every operator's work is scaled by the same factor — morsel
// parallelism applies across the whole tree — so relative plan choices
// (index vs sequential scan, join order, rewrite strategy) are exactly
// what a serial cost model would pick; only the absolute numbers shrink.
func cpu(work float64) float64 { return work / costDOP() }

// evalCPU costs rows·perRow units of expression-evaluation work under the
// batch execution model: vectorization discounts the per-row interpreter
// overhead and adds one dispatch term per MorselSize-row batch. With
// vectorization disabled process-wide it degenerates to cpu(rows·perRow).
// The term applies uniformly to every expression-evaluating operator
// (filter, project, join, group, window), so relative plan choices match
// the row-at-a-time model; only absolute numbers move. It reads the
// process-wide exec.Vectorize knob at plan time, like costDOP reads
// exec.Parallelism; per-query overrides do not replan.
func evalCPU(rows, perRow float64) float64 {
	if !exec.Vectorize {
		return cpu(rows * perRow)
	}
	batches := math.Ceil(rows / float64(exec.MorselSize))
	return cpu(rows*perRow*costVecDiscount + batches*costBatchDispatch)
}

func concatSchemas(l, r *planned) *schema.Schema {
	return schema.Concat(l.schema(), r.schema())
}

// selectivity estimates the fraction of pl's rows satisfying expr.
// Conjunctions multiply, disjunctions combine with inclusion-exclusion,
// comparisons consult base-column statistics, and IN predicates scale by
// the member count (or the subquery's estimated cardinality — this is what
// makes a join-back semi-join look as cheap as it is when the pushed
// predicate correlates with the cluster key).
func (b *builder) selectivity(expr sqlast.Expr, pl *planned, subplans map[sqlast.Stmt]exec.Node) float64 {
	switch e := expr.(type) {
	case nil:
		return 1
	case *sqlast.Bin:
		switch e.Op {
		case sqlast.OpAnd:
			return b.selectivity(e.L, pl, subplans) * b.selectivity(e.R, pl, subplans)
		case sqlast.OpOr:
			sl := b.selectivity(e.L, pl, subplans)
			sr := b.selectivity(e.R, pl, subplans)
			return sl + sr - sl*sr
		}
		if e.Op.IsComparison() {
			return b.cmpSelectivity(e, pl)
		}
		return defaultSel
	case *sqlast.Un:
		if e.Op == sqlast.OpNot {
			return 1 - b.selectivity(e.E, pl, subplans)
		}
		return defaultSel
	case *sqlast.IsNull:
		if e.Neg {
			return 0.95
		}
		return 0.05
	case *sqlast.In:
		st := b.statsFor(e.E, pl)
		d := 100.0
		if st != nil && st.Distinct > 0 {
			d = float64(st.Distinct)
		}
		var members float64
		if e.Sub != nil {
			if node, ok := subplans[e.Sub]; ok {
				members = node.EstRows()
			} else {
				members = d * defaultSel
			}
		} else {
			members = float64(len(e.List))
		}
		sel := members / d
		if sel > 1 {
			sel = 1
		}
		if e.Neg {
			sel = 1 - sel
		}
		return sel
	case *sqlast.Like:
		if e.Neg {
			return 0.9
		}
		return 0.1
	case *sqlast.Const:
		return 1 // constant TRUE/FALSE predicates are rare; assume pass
	}
	return defaultSel
}

func (b *builder) cmpSelectivity(e *sqlast.Bin, pl *planned) float64 {
	cr, lit, op := matchColConst(e)
	if cr == nil || lit == nil {
		// col = col within one input, or non-foldable expression.
		if e.Op == sqlast.OpEq {
			return 0.1
		}
		return defaultSel
	}
	st := b.statsFor(cr, pl)
	if st == nil {
		if op == sqlast.OpEq {
			return 0.1
		}
		return defaultSel
	}
	v := lit.V
	switch op {
	case sqlast.OpEq:
		return st.EqSelectivity()
	case sqlast.OpNe:
		return 1 - st.EqSelectivity()
	case sqlast.OpLt, sqlast.OpLe:
		return st.RangeSelectivity(nil, &v)
	case sqlast.OpGt, sqlast.OpGe:
		return st.RangeSelectivity(&v, nil)
	}
	return defaultSel
}

// statsFor resolves an expression to base-column statistics when it is a
// plain column reference that traces to a base table.
func (b *builder) statsFor(e sqlast.Expr, pl *planned) *storage.ColStats {
	cr, ok := e.(*sqlast.ColRef)
	if !ok {
		return nil
	}
	idx, err := pl.schema().Resolve(cr.Table, cr.Name)
	if err != nil || idx >= len(pl.stats) {
		return nil
	}
	return pl.stats[idx]
}
