package plan

import (
	"repro/internal/sqlast"
	"repro/internal/types"
)

// foldConsts simplifies constant arithmetic subtrees ("T1 + 5 minutes"
// with T1 a literal becomes a single literal). Rewrites generate such
// expressions constantly; folding them makes predicates sargable for
// index-scan selection and keeps selectivity estimation exact.
func foldConsts(e sqlast.Expr) sqlast.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *sqlast.Bin:
		l := foldConsts(e.L)
		r := foldConsts(e.R)
		if e.Op.IsArith() {
			lc, lok := l.(*sqlast.Const)
			rc, rok := r.(*sqlast.Const)
			if lok && rok {
				var op types.ArithOp
				switch e.Op {
				case sqlast.OpAdd:
					op = types.OpAdd
				case sqlast.OpSub:
					op = types.OpSub
				case sqlast.OpMul:
					op = types.OpMul
				case sqlast.OpDiv:
					op = types.OpDiv
				}
				if v, err := types.Arith(op, lc.V, rc.V); err == nil {
					return sqlast.Lit(v)
				}
			}
		}
		return &sqlast.Bin{Op: e.Op, L: l, R: r}
	case *sqlast.Un:
		inner := foldConsts(e.E)
		if e.Op == sqlast.OpNeg {
			if c, ok := inner.(*sqlast.Const); ok {
				if v, err := types.Arith(types.OpSub, types.NewInt(0), c.V); err == nil {
					return sqlast.Lit(v)
				}
			}
		}
		return &sqlast.Un{Op: e.Op, E: inner}
	case *sqlast.IsNull:
		return &sqlast.IsNull{E: foldConsts(e.E), Neg: e.Neg}
	case *sqlast.Case:
		out := &sqlast.Case{Whens: make([]sqlast.When, len(e.Whens)), Else: foldConsts(e.Else)}
		for i, w := range e.Whens {
			out.Whens[i] = sqlast.When{Cond: foldConsts(w.Cond), Then: foldConsts(w.Then)}
		}
		return out
	case *sqlast.In:
		out := &sqlast.In{E: foldConsts(e.E), Neg: e.Neg, Sub: e.Sub}
		for _, x := range e.List {
			out.List = append(out.List, foldConsts(x))
		}
		return out
	case *sqlast.FuncCall:
		out := &sqlast.FuncCall{Name: e.Name, Distinct: e.Distinct, Star: e.Star}
		for _, a := range e.Args {
			out.Args = append(out.Args, foldConsts(a))
		}
		return out
	case *sqlast.WindowExpr:
		out := &sqlast.WindowExpr{Func: e.Func, Arg: foldConsts(e.Arg), Star: e.Star}
		for _, p := range e.Partition {
			out.Partition = append(out.Partition, foldConsts(p))
		}
		for _, o := range e.Order {
			out.Order = append(out.Order, sqlast.OrderItem{Expr: foldConsts(o.Expr), Desc: o.Desc})
		}
		if e.Frame != nil {
			f := *e.Frame
			f.Start.Offset = foldConsts(e.Frame.Start.Offset)
			f.End.Offset = foldConsts(e.Frame.End.Offset)
			out.Frame = &f
		}
		return out
	default:
		return e
	}
}

// replaceByCanon substitutes subexpressions whose printed form appears in
// repl. The planner uses it to swap aggregate calls, window expressions,
// and GROUP BY keys for references to their computed columns.
func replaceByCanon(e sqlast.Expr, repl map[string]sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	if r, ok := repl[sqlast.ExprSQL(e)]; ok {
		return sqlast.CloneExpr(r)
	}
	switch e := e.(type) {
	case *sqlast.ColRef, *sqlast.Const, *sqlast.Exists:
		return e
	case *sqlast.Bin:
		return &sqlast.Bin{Op: e.Op, L: replaceByCanon(e.L, repl), R: replaceByCanon(e.R, repl)}
	case *sqlast.Un:
		return &sqlast.Un{Op: e.Op, E: replaceByCanon(e.E, repl)}
	case *sqlast.IsNull:
		return &sqlast.IsNull{E: replaceByCanon(e.E, repl), Neg: e.Neg}
	case *sqlast.Case:
		out := &sqlast.Case{Whens: make([]sqlast.When, len(e.Whens)), Else: replaceByCanon(e.Else, repl)}
		for i, w := range e.Whens {
			out.Whens[i] = sqlast.When{Cond: replaceByCanon(w.Cond, repl), Then: replaceByCanon(w.Then, repl)}
		}
		return out
	case *sqlast.In:
		out := &sqlast.In{E: replaceByCanon(e.E, repl), Neg: e.Neg, Sub: e.Sub}
		for _, x := range e.List {
			out.List = append(out.List, replaceByCanon(x, repl))
		}
		return out
	case *sqlast.FuncCall:
		out := &sqlast.FuncCall{Name: e.Name, Distinct: e.Distinct, Star: e.Star}
		for _, a := range e.Args {
			out.Args = append(out.Args, replaceByCanon(a, repl))
		}
		return out
	case *sqlast.WindowExpr:
		return e
	}
	return e
}
