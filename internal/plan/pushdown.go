package plan

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// pushIntoStmt tries to push each conjunct into the WHERE clause(s) of a
// statement that will be planned as a derived table bound under `binding`.
// Conjuncts that cannot be pushed safely are returned as the residue to be
// filtered on top. Pushing distributes across UNION branches, which is what
// lets a join-back rewrite over the missing-rule's caseR∪palletR input view
// restrict both underlying tables (the effect §6.3 of the paper relies on).
//
// Safety rules: never push through LIMIT, GROUP BY, HAVING, or window
// references; only push a conjunct whose columns all map to plain column
// references of the subquery's select list (or pass through a star).
func pushIntoStmt(stmt sqlast.Stmt, conjs []sqlast.Expr, binding string, db *catalog.Database) (sqlast.Stmt, []sqlast.Expr) {
	var rest []sqlast.Expr
	out := stmt
	for _, c := range conjs {
		pushed, ok := pushOne(out, c, binding, db)
		if ok {
			out = pushed
		} else {
			rest = append(rest, c)
		}
	}
	return out, rest
}

func pushOne(stmt sqlast.Stmt, conj sqlast.Expr, binding string, db *catalog.Database) (sqlast.Stmt, bool) {
	switch s := stmt.(type) {
	case *sqlast.SelectStmt:
		if s.Limit != nil || s.Offset != nil || len(s.GroupBy) > 0 || s.Having != nil {
			return stmt, false
		}
		// A SELECT computing window functions is a hard barrier: its WHERE
		// runs before the windows, so merging an outer predicate into it
		// would shrink every window frame — the exact unsound "push the
		// query predicate below cleansing" transformation the paper's §5.1
		// counterexamples demonstrate.
		for _, it := range s.Items {
			if it.Expr != nil && containsWindowOrAgg(it.Expr) {
				return stmt, false
			}
		}
		mapped, ok := remapConj(conj, s, binding)
		if !ok {
			return stmt, false
		}
		out := *s
		out.Where = sqlast.And(out.Where, mapped)
		return &out, true
	case *sqlast.SetOpStmt:
		l, ok := pushOne(s.L, conj, binding, db)
		if !ok {
			return stmt, false
		}
		r, ok := pushOne(s.R, conj, binding, db)
		if !ok {
			return stmt, false
		}
		return &sqlast.SetOpStmt{Op: s.Op, All: s.All, L: l, R: r}, true
	}
	return stmt, false
}

// remapConj rewrites a conjunct's column references from the derived
// table's output names to the underlying expressions of the select list.
func remapConj(conj sqlast.Expr, s *sqlast.SelectStmt, binding string) (sqlast.Expr, bool) {
	// Build output-name → source-expression map.
	byName := map[string]sqlast.Expr{}
	hasStar := false
	for _, it := range s.Items {
		switch {
		case it.Star:
			hasStar = true
		case it.Alias != "":
			byName[strings.ToLower(it.Alias)] = it.Expr
		default:
			if cr, ok := it.Expr.(*sqlast.ColRef); ok {
				byName[strings.ToLower(cr.Name)] = cr
			}
		}
	}
	ok := true
	mapped := sqlast.MapColRefs(sqlast.CloneExpr(conj), func(cr *sqlast.ColRef) sqlast.Expr {
		if !ok {
			return cr
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, binding) {
			ok = false
			return cr
		}
		name := strings.ToLower(cr.Name)
		if src, found := byName[name]; found {
			if containsWindowOrAgg(src) {
				ok = false
				return cr
			}
			return sqlast.CloneExpr(src)
		}
		if hasStar {
			// Passes through unchanged; drop the outer qualifier since the
			// inner scope does not know the outer binding.
			return &sqlast.ColRef{Name: cr.Name}
		}
		ok = false
		return cr
	})
	if !ok {
		return nil, false
	}
	return mapped, true
}

func containsWindowOrAgg(e sqlast.Expr) bool {
	found := false
	sqlast.VisitExprs(e, func(x sqlast.Expr) {
		switch x := x.(type) {
		case *sqlast.WindowExpr:
			found = true
		case *sqlast.FuncCall:
			if isAggName(x.Name) {
				found = true
			}
		}
	})
	return found
}

func isAggName(name string) bool {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}
