// Package plan translates SQL statements into physical operator trees:
// name resolution, predicate classification and pushdown (including
// through views and UNION branches), index-scan selection, greedy join
// ordering, window-function extraction with sort-order sharing, and a
// cardinality/cost model. The query-rewrite engine in internal/core uses
// the planner's cost estimates to choose among candidate rewrites, the
// same way the paper compiles each candidate on the DBMS and keeps the
// cheapest.
package plan

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/types"
)

// lazyFilterNode filters rows by a predicate that may contain uncorrelated
// IN/EXISTS subqueries. The subquery plans execute through the statement's
// execution context (so a repeated subquery runs once), which is why the
// predicate compiles lazily at Execute time rather than at plan time —
// planning must never execute anything, or costing candidate rewrites
// would pay for running them.
type lazyFilterNode struct {
	input    exec.Node
	expr     sqlast.Expr
	subplans map[sqlast.Stmt]exec.Node
	desc     string

	estRows, estCost float64
}

func (n *lazyFilterNode) Schema() *schema.Schema { return n.input.Schema() }

// Children exposes the subquery plans alongside the input so EXPLAIN (and
// plan-shape assertions) see every table access the filter performs.
func (n *lazyFilterNode) Children() []exec.Node {
	out := []exec.Node{n.input}
	for _, sp := range n.subplans {
		out = append(out, sp)
	}
	return out
}
func (n *lazyFilterNode) Label() string             { return "Filter(" + n.desc + ")" }
func (n *lazyFilterNode) EstRows() float64          { return n.estRows }
func (n *lazyFilterNode) EstCost() float64          { return n.estCost }
func (n *lazyFilterNode) Ordering() []exec.OrderCol { return n.input.Ordering() }

func (n *lazyFilterNode) Execute(ctx *exec.Ctx) (*exec.Result, error) {
	in, err := exec.Run(ctx, n.input)
	if err != nil {
		return nil, err
	}
	env := &eval.Env{
		Schema: n.input.Schema(),
		SubEval: func(s sqlast.Stmt) ([]types.Value, error) {
			node, ok := n.subplans[s]
			if !ok {
				return nil, fmt.Errorf("plan: unplanned subquery in predicate %s", n.desc)
			}
			res, err := exec.Run(ctx, node)
			if err != nil {
				return nil, err
			}
			out := make([]types.Value, len(res.Rows))
			for i, r := range res.Rows {
				out[i] = r[0]
			}
			return out, nil
		},
	}
	pred, err := eval.Compile(n.expr, env)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Row, 0, len(in.Rows)/4+1)
	vec := ctx.VectorizeEnabled() && pred.Vectorized()
	ctx.NoteEval(n, vec, len(in.Rows))
	if vec {
		// Batch the predicate over MorselSize chunks; EvalPredicateBatch
		// reruns the row path in order on kernel errors, so failures match
		// the serial loop below exactly.
		var sel []int
		for b := 0; b < len(in.Rows); b += exec.MorselSize {
			e := b + exec.MorselSize
			if e > len(in.Rows) {
				e = len(in.Rows)
			}
			if err := ctx.Canceled(); err != nil {
				return nil, err
			}
			sel, err = eval.EvalPredicateBatch(pred, in.Rows[b:e], nil, sel[:0])
			if err != nil {
				return nil, err
			}
			for _, i := range sel {
				out = append(out, in.Rows[b+i])
			}
		}
		return &exec.Result{Schema: n.input.Schema(), Rows: out}, nil
	}
	for _, r := range in.Rows {
		ok, err := eval.EvalPredicate(pred, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return &exec.Result{Schema: n.input.Schema(), Rows: out}, nil
}
