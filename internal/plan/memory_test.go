package plan

import (
	"strings"
	"testing"

	"repro/internal/exec"
)

func TestPlanCarriesMemoryEstimates(t *testing.T) {
	p := New(testDB(t))
	node, err := p.PlanSQL(`SELECT loc, COUNT(*) AS c FROM reads GROUP BY loc ORDER BY c DESC`)
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	var walk func(n exec.Node)
	walk = func(n exec.Node) {
		switch n.(type) {
		case *exec.SortNode, *exec.GroupNode:
			if exec.EstMem(n) <= 0 {
				t.Errorf("%s has no memory estimate", n.Label())
			}
			checked++
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(node)
	if checked < 2 {
		t.Fatalf("expected a sort and a group in the plan, found %d materializing nodes", checked)
	}
	out := exec.Explain(node)
	if !strings.Contains(out, "mem=") {
		t.Fatalf("EXPLAIN output missing mem= annotation:\n%s", out)
	}
}
