package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Attr is one key/value annotation on a span. Attrs are a small ordered
// list, not a map: spans carry a handful of them and render in insertion
// order.
type Attr struct {
	Key, Val string
}

// Span is one timed stage of a query: a rewrite phase, the admission
// wait, or one operator of the executed plan. Durations are cumulative —
// a parent span covers its children — mirroring how EXPLAIN ANALYZE
// reports operator times.
//
// Spans are built single-threaded by the serving layer and are immutable
// once the query's trace is handed out; readers need no locking.
type Span struct {
	Name     string
	Start    time.Time
	Dur      time.Duration
	Attrs    []Attr
	Children []*Span
}

// NewSpan starts a span now.
func NewSpan(name string) *Span { return &Span{Name: name, Start: time.Now()} }

// StartChild appends and returns a new child span starting now.
func (s *Span) StartChild(name string) *Span {
	c := NewSpan(name)
	s.Children = append(s.Children, c)
	return c
}

// AddChild appends a pre-built child span (the per-operator subtree).
func (s *Span) AddChild(c *Span) { s.Children = append(s.Children, c) }

// End stamps the span's duration from its start time.
func (s *Span) End() { s.Dur = time.Since(s.Start) }

// SetAttr appends or replaces one annotation.
func (s *Span) SetAttr(key, val string) {
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Val = val
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// Attr returns one annotation's value.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Exclusive is the span's self time: its duration minus its children's,
// clamped at zero. Because durations are cumulative, this is the time
// the stage itself consumed — the quantity the slow-query log ranks by.
func (s *Span) Exclusive() time.Duration {
	d := s.Dur
	for _, c := range s.Children {
		d -= c.Dur
	}
	if d < 0 {
		return 0
	}
	return d
}

// Walk visits the span and every descendant, depth-first, parents before
// children.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	s.walk(0, fn)
}

func (s *Span) walk(depth int, fn func(int, *Span)) {
	fn(depth, s)
	for _, c := range s.Children {
		c.walk(depth+1, fn)
	}
}

// Trace is one query's telemetry: its ID, the query text, and the span
// tree (parse → rewrite → plan → admission wait → per-operator
// execution under one root).
type Trace struct {
	QueryID QueryID
	SQL     string
	Root    *Span
}

// NewTrace starts a trace with a fresh root span.
func NewTrace(id QueryID, sql string) *Trace {
	return &Trace{QueryID: id, SQL: sql, Root: NewSpan("query")}
}

// Find returns the first span with the given name, depth-first, or nil.
func (t *Trace) Find(name string) *Span {
	if t == nil || t.Root == nil {
		return nil
	}
	var found *Span
	t.Root.Walk(func(_ int, sp *Span) {
		if found == nil && sp.Name == name {
			found = sp
		}
	})
	return found
}

// SlowestSpans returns up to n spans ranked by exclusive (self) time,
// slowest first. The root span is excluded — it always dominates
// cumulative time and says nothing about where the time went.
func (t *Trace) SlowestSpans(n int) []*Span {
	if t == nil || t.Root == nil || n <= 0 {
		return nil
	}
	var all []*Span
	t.Root.Walk(func(depth int, sp *Span) {
		if depth > 0 {
			all = append(all, sp)
		}
	})
	sort.SliceStable(all, func(i, j int) bool { return all[i].Exclusive() > all[j].Exclusive() })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// String renders the trace as an indented tree, one span per line, for
// the shell's \trace mode and debugging.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %s\n", t.QueryID, t.SQL)
	t.Root.Walk(func(depth int, sp *Span) {
		fmt.Fprintf(&b, "%s%s  %s", strings.Repeat("  ", depth+1), sp.Name, sp.Dur.Round(time.Microsecond))
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
		}
		b.WriteString("\n")
	})
	return b.String()
}
