package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("t_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	v, ok := r.CounterValue("t_total", "")
	if !ok || v != 5 {
		t.Fatalf("CounterValue = %v,%v", v, ok)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Buckets are cumulative at exposition: le=0.01 holds 0.005 and 0.01
	// (boundary values belong to their bucket), le=0.1 adds 0.05, le=1
	// adds 0.5, +Inf adds 5.
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`t_seconds_bucket{le="0.01"} 2`,
		`t_seconds_bucket{le="0.1"} 3`,
		`t_seconds_bucket{le="1"} 4`,
		`t_seconds_bucket{le="+Inf"} 5`,
		`t_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecChildrenAndFuncCollectors(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("t_ops_total", "per-op", "op")
	cv.With("Scan").Add(10)
	cv.With("Filter").Add(3)
	cv.With("Scan").Inc()
	n := 7.0
	r.GaugeFunc("t_backing", "func-backed", func() float64 { return n })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`t_ops_total{op="Filter"} 3`,
		`t_ops_total{op="Scan"} 11`,
		`t_backing 7`,
		"# TYPE t_ops_total counter",
		"# TYPE t_backing gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Children render sorted by label value (Filter before Scan).
	if strings.Index(out, `op="Filter"`) > strings.Index(out, `op="Scan"`) {
		t.Errorf("labeled children not sorted:\n%s", out)
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "help text").Add(3)
	r.HistogramVec("t_lat_seconds", "latency", "outcome", []float64{0.1, 1}).With("ok").Observe(0.05)

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []JSONFamily `json:"families"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(doc.Families))
	}
	byName := map[string]JSONFamily{}
	for _, f := range doc.Families {
		byName[f.Name] = f
	}
	if f := byName["t_total"]; f.Type != "counter" || f.Metrics[0].Value == nil || *f.Metrics[0].Value != 3 {
		t.Errorf("t_total JSON wrong: %+v", f)
	}
	h := byName["t_lat_seconds"]
	if h.Type != "histogram" || h.Metrics[0].Labels["outcome"] != "ok" {
		t.Fatalf("t_lat_seconds JSON wrong: %+v", h)
	}
	if *h.Metrics[0].Count != 1 || h.Metrics[0].Buckets["0.1"] != 1 || h.Metrics[0].Buckets["+Inf"] != 1 {
		t.Errorf("histogram buckets wrong: %+v", h.Metrics[0])
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "help").Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "t_total 1") {
		t.Errorf("prometheus body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Errorf("json body invalid: %v", err)
	}
}

func TestRegistryConcurrentPublishAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "h")
	hv := r.HistogramVec("t_seconds", "h", "outcome", DefLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				hv.With("ok").Observe(0.001)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b bytes.Buffer
			for j := 0; j < 50; j++ {
				b.Reset()
				_ = r.WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if count, _, _ := r.HistogramStats("t_seconds", "ok"); count != 4000 {
		t.Fatalf("histogram count = %d, want 4000", count)
	}
}

func TestTraceSpansAndSlowest(t *testing.T) {
	tr := NewTrace(NextQueryID(), "SELECT 1")
	tr.Root.Start = time.Now()
	exec := tr.Root.StartChild("execute")
	op1 := exec.StartChild("Sort(1 keys)")
	op1.Dur = 30 * time.Millisecond
	op2 := op1.StartChild("Scan(t)")
	op2.Dur = 10 * time.Millisecond
	exec.Dur = 31 * time.Millisecond
	tr.Root.Dur = 32 * time.Millisecond
	op1.SetAttr("rows", "100")

	if got := tr.Find("Scan(t)"); got != op2 {
		t.Fatalf("Find returned %v", got)
	}
	if v, ok := op1.Attr("rows"); !ok || v != "100" {
		t.Fatalf("attr rows = %q,%v", v, ok)
	}
	// Exclusive: Sort 20ms, Scan 10ms, execute 1ms.
	slow := tr.SlowestSpans(2)
	if len(slow) != 2 || slow[0] != op1 || slow[1] != op2 {
		t.Fatalf("SlowestSpans ranked wrong: %v", slow)
	}
	if op1.Exclusive() != 20*time.Millisecond {
		t.Fatalf("exclusive = %v", op1.Exclusive())
	}
	out := tr.String()
	if !strings.Contains(out, "Sort(1 keys)") || !strings.Contains(out, "rows=100") {
		t.Errorf("trace rendering missing span/attr:\n%s", out)
	}
}

func TestQueryIDsUnique(t *testing.T) {
	a, b := NextQueryID(), NextQueryID()
	if a == b {
		t.Fatal("NextQueryID repeated")
	}
	if !strings.HasPrefix(a.String(), "q-") {
		t.Fatalf("QueryID format: %s", a)
	}
}

func TestCounterVec2Exposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec2("http_requests_total", "Requests by route and status.", "route", "status")
	v.With("/query", "200").Add(3)
	v.With("/query", "400").Inc()
	v.With("/metrics", "200").Inc()

	if got, ok := r.CounterValue2("http_requests_total", "/query", "200"); !ok || got != 3 {
		t.Fatalf("CounterValue2 = %v,%v", got, ok)
	}
	if _, ok := r.CounterValue2("http_requests_total", "/query", "503"); ok {
		t.Fatal("CounterValue2 found a label pair never incremented")
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{route="/metrics",status="200"} 1`,
		`http_requests_total{route="/query",status="200"} 3`,
		`http_requests_total{route="/query",status="400"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Children render sorted by first label then second.
	if strings.Index(text, `route="/metrics"`) > strings.Index(text, `route="/query"`) {
		t.Errorf("two-label children not sorted:\n%s", text)
	}

	found := false
	for _, f := range r.Snapshot() {
		if f.Name != "http_requests_total" {
			continue
		}
		found = true
		if len(f.Metrics) != 3 {
			t.Fatalf("JSON metrics = %d, want 3", len(f.Metrics))
		}
		labels := f.Metrics[1].Labels
		if labels["route"] != "/query" || labels["status"] != "200" {
			t.Errorf("JSON labels = %v", labels)
		}
	}
	if !found {
		t.Fatal("family missing from JSON snapshot")
	}
}
