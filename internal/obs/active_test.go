package obs

import (
	"sync"
	"testing"
	"time"
)

func TestActiveSetRegisterSnapshotRemove(t *testing.T) {
	s := NewActiveSet()
	start := time.Now().Add(-time.Second)
	e1 := s.Register(QueryID(2), "query", "SELECT 1", start, nil)
	s.Register(QueryID(1), "ingest", "INGEST INTO reads (3 rows)", start, nil)
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	e1.SetPhase("execute")
	e1.Attach(
		func() []ActiveOp { return []ActiveOp{{Op: "Scan", Rows: 42, Batches: 3}} },
		func() int64 { return 4096 },
	)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(snap))
	}
	// Sorted by ID: the ingest (id 1) first, the query (id 2) second.
	if snap[0].ID != 1 || snap[0].Kind != "ingest" {
		t.Fatalf("snap[0] = %+v, want id 1 kind ingest", snap[0])
	}
	q := snap[1]
	if q.ID != 2 || q.Kind != "query" || q.SQL != "SELECT 1" || q.Phase != "execute" {
		t.Fatalf("snap[1] = %+v", q)
	}
	if q.MemBytes != 4096 {
		t.Fatalf("MemBytes = %d, want 4096", q.MemBytes)
	}
	if q.Elapsed < time.Second {
		t.Fatalf("Elapsed = %v, want >= 1s", q.Elapsed)
	}
	if len(q.Operators) != 1 || q.Operators[0] != (ActiveOp{Op: "Scan", Rows: 42, Batches: 3}) {
		t.Fatalf("Operators = %+v", q.Operators)
	}
	s.Remove(QueryID(1))
	s.Remove(QueryID(2))
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after Remove = %d, want 0", got)
	}
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Fatalf("Snapshot after Remove = %+v, want empty", snap)
	}
}

func TestActiveSetKill(t *testing.T) {
	s := NewActiveSet()
	canceled := 0
	e := s.Register(QueryID(7), "query", "SELECT 1", time.Now(), func() { canceled++ })
	if s.Kill(QueryID(99)) {
		t.Fatal("Kill of unknown ID reported found")
	}
	if !s.Kill(QueryID(7)) {
		t.Fatal("Kill of registered ID reported not found")
	}
	if canceled != 1 {
		t.Fatalf("cancel invoked %d times, want 1", canceled)
	}
	if !e.Killed() {
		t.Fatal("entry not marked killed")
	}
	// Still visible (as killed) until the statement unwinds and removes
	// itself — a racing snapshot must not show it as silently gone.
	snap := s.Snapshot()
	if len(snap) != 1 || !snap[0].Killed {
		t.Fatalf("Snapshot after Kill = %+v, want one killed entry", snap)
	}
	// Idempotent: a second Kill fires cancel again but stays consistent.
	if !s.Kill(QueryID(7)) {
		t.Fatal("second Kill reported not found")
	}
}

func TestActiveSetConcurrent(t *testing.T) {
	s := NewActiveSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := QueryID(i*1000 + j)
				e := s.Register(id, "query", "SELECT 1", time.Now(), func() {})
				e.SetPhase("execute")
				e.Attach(func() []ActiveOp { return nil }, func() int64 { return 1 })
				s.Kill(id)
				s.Remove(id)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}
