package obs

import (
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping pins the text-format escaping rules for
// label values: backslash → \\, double quote → \", newline → \n — and
// nothing else. In particular a tab must pass through literally
// (strconv.Quote would render it as \t, which the Prometheus parser
// reads as a literal 't').
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("esc_total", "escaping test", "val")
	c.With(`back\slash`).Inc()
	c.With(`quo"te`).Inc()
	c.With("new\nline").Inc()
	c.With("tab\there").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`esc_total{val="back\\slash"} 1`,
		`esc_total{val="quo\"te"} 1`,
		`esc_total{val="new\nline"} 1`,
		"esc_total{val=\"tab\there\"} 1", // literal tab, NOT \t
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
	if strings.Contains(out, `\t`) {
		t.Errorf("exposition contains \\t escape (invalid in Prometheus text format):\n%s", out)
	}
}

// TestPrometheusHistogramLabelEscaping covers the labeled-histogram
// bucket lines, which render their label value separately from the
// scalar samples.
func TestPrometheusHistogramLabelEscaping(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("esc_seconds", "escaping test", "op", []float64{1})
	h.With(`a\b"c`).Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`esc_seconds_bucket{op="a\\b\"c",le="1"} 1`,
		`esc_seconds_bucket{op="a\\b\"c",le="+Inf"} 1`,
		`esc_seconds_sum{op="a\\b\"c"} 0.5`,
		`esc_seconds_count{op="a\\b\"c"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
}

// TestPrometheusHelpEscaping: HELP text escapes backslash and newline
// only (quotes stay raw on HELP lines).
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("help_esc_total", "line one\nline \\two with \"quotes\"")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `# HELP help_esc_total line one\nline \\two with "quotes"`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("HELP line not escaped\nwant: %s\ngot:\n%s", want, out)
	}
	// A raw newline inside HELP would split the comment and corrupt the
	// exposition: every line must be a comment or a sample.
	for _, ln := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if ln == "" {
			t.Errorf("empty line in exposition:\n%s", out)
		}
		if !strings.HasPrefix(ln, "#") && !strings.HasPrefix(ln, "help_esc_total") {
			t.Errorf("stray line %q in exposition:\n%s", ln, out)
		}
	}
}
