package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// labelEscaper applies the Prometheus text-format escaping rules for
// label values: backslash, double quote, and newline — and nothing else.
// strconv.Quote is NOT a substitute: it escapes tab as `\t` and
// non-printing runes as `\xNN`, sequences the Prometheus parser rejects
// or reads literally.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper applies the HELP-line rules: only backslash and newline.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeLabel renders a label value as a quoted, escaped literal.
func escapeLabel(v string) string {
	return `"` + labelEscaper.Replace(v) + `"`
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, counters and gauges as
// single samples, histograms as cumulative `_bucket{le=...}` samples plus
// `_sum` and `_count`. Families print in name order, labeled children in
// label-value order, so the output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sorted() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, helpEscaper.Replace(f.help), f.name, f.kind); err != nil {
			return err
		}
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writePrometheus(w io.Writer) error {
	write := func(suffix, labels string, v float64) error {
		_, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, suffix, labels, formatFloat(v))
		return err
	}
	switch {
	case f.fn != nil:
		return write("", "", f.fn())
	case f.label == "":
		return writeMetricProm(w, f, f.single, "")
	default:
		for _, val := range f.labelValues() {
			f.mu.Lock()
			m := f.children[val]
			f.mu.Unlock()
			if err := writeMetricProm(w, f, m, val); err != nil {
				return err
			}
		}
		return nil
	}
}

// labelString renders a child's label set ({} form, "" when unlabeled).
// Two-label families store children under composite keys; split them
// back into their parts here.
func (f *family) labelString(labelVal string) string {
	if f.label == "" {
		return ""
	}
	if f.label2 != "" {
		v1, v2, _ := strings.Cut(labelVal, labelSep)
		return fmt.Sprintf("{%s=%s,%s=%s}", f.label, escapeLabel(v1), f.label2, escapeLabel(v2))
	}
	return fmt.Sprintf("{%s=%s}", f.label, escapeLabel(labelVal))
}

// labelMap is labelString's JSON counterpart.
func (f *family) labelMap(labelVal string) map[string]string {
	if f.label == "" {
		return nil
	}
	if f.label2 != "" {
		v1, v2, _ := strings.Cut(labelVal, labelSep)
		return map[string]string{f.label: v1, f.label2: v2}
	}
	return map[string]string{f.label: labelVal}
}

// writeMetricProm renders one metric (unlabeled when labelVal is "" and
// the family has no label name).
func writeMetricProm(w io.Writer, f *family, m any, labelVal string) error {
	labels := f.labelString(labelVal)
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(v.Value()))
		return err
	case *Histogram:
		counts := v.snapshot()
		var cum uint64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(v.bounds) {
				le = formatFloat(v.bounds[i])
			}
			bl := fmt.Sprintf("{le=%q}", le)
			if f.label != "" {
				bl = fmt.Sprintf("{%s=%s,le=%q}", f.label, escapeLabel(labelVal), le)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bl, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, v.Count())
		return err
	case nil:
		return nil
	}
	return fmt.Errorf("obs: unknown metric type %T in family %s", m, f.name)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integers without a trailing ".0".
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	return s
}

// JSONFamily is one family in the JSON exposition.
type JSONFamily struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help"`
	Metrics []JSONMetric `json:"metrics"`
}

// JSONMetric is one sample (or histogram) in the JSON exposition.
type JSONMetric struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Buckets maps upper bound ("+Inf" included) to cumulative count;
	// Sum and Count complete the histogram. Set for histograms only.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
}

// Snapshot returns the full registry contents as JSON-shaped structs, in
// family-name order.
func (r *Registry) Snapshot() []JSONFamily {
	var out []JSONFamily
	for _, f := range r.sorted() {
		jf := JSONFamily{Name: f.name, Type: f.kind, Help: f.help}
		add := func(m any, labelVal string) {
			labels := f.labelMap(labelVal)
			switch v := m.(type) {
			case *Counter:
				val := float64(v.Value())
				jf.Metrics = append(jf.Metrics, JSONMetric{Labels: labels, Value: &val})
			case *Gauge:
				val := v.Value()
				jf.Metrics = append(jf.Metrics, JSONMetric{Labels: labels, Value: &val})
			case *Histogram:
				counts := v.snapshot()
				buckets := make(map[string]uint64, len(counts))
				var cum uint64
				for i, c := range counts {
					cum += c
					le := "+Inf"
					if i < len(v.bounds) {
						le = formatFloat(v.bounds[i])
					}
					buckets[le] = cum
				}
				sum, count := v.Sum(), v.Count()
				jf.Metrics = append(jf.Metrics, JSONMetric{Labels: labels, Buckets: buckets, Sum: &sum, Count: &count})
			}
		}
		switch {
		case f.fn != nil:
			val := f.fn()
			jf.Metrics = append(jf.Metrics, JSONMetric{Value: &val})
		case f.label == "":
			add(f.single, "")
		default:
			for _, val := range f.labelValues() {
				f.mu.Lock()
				m := f.children[val]
				f.mu.Unlock()
				add(m, val)
			}
		}
		out = append(out, jf)
	}
	return out
}

// WriteJSON renders the registry as a JSON document:
// {"families": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string][]JSONFamily{"families": r.Snapshot()})
}

// Handler serves the registry over HTTP: Prometheus text format by
// default, the JSON document with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.EqualFold(req.URL.Query().Get("format"), "json") {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
