// Package obs is the observability layer of the deferred-cleansing
// engine: a lock-cheap metrics registry (counters, gauges, and
// fixed-bucket float histograms, optionally labeled), Prometheus-text and
// JSON exposition over the registry, and a per-query structured tracing
// model (QueryID plus a span tree).
//
// The package is engine-agnostic, like govern: it knows nothing about
// plans, rows, or rewrites. The serving layer owns one Registry per DB,
// registers its metric families once at Open, and publishes into them on
// the query path; components that already keep their own atomic counters
// (the plan cache, the admission controller, the govern accountant)
// are exposed through func-backed collectors that read those counters at
// scrape time, so every number has exactly one home.
//
// Hot-path cost model: registration and labeled-child lookup take a
// mutex, but both happen once per family (or once per query for a
// handful of labels); Observe/Add/Inc on an already-resolved metric are
// one or two atomic operations and allocate nothing.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// QueryID identifies one query execution for traces, the slow-query log,
// and support tooling. IDs are unique within a process.
type QueryID uint64

// String renders the ID the way logs and traces print it.
func (id QueryID) String() string { return fmt.Sprintf("q-%08d", uint64(id)) }

var queryIDs atomic.Uint64

// NextQueryID allocates a process-unique query ID.
func NextQueryID() QueryID { return QueryID(queryIDs.Add(1)) }

// DefLatencyBuckets are the fixed histogram bounds for latency metrics,
// in seconds: 100µs to 10s, roughly logarithmic. Chosen so the paper's
// workload (sub-millisecond cache hits up to multi-second cold windowed
// cleansing at high scale) spreads across the range.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefBytesBuckets are the fixed histogram bounds for memory metrics, in
// bytes: 4KiB to 1GiB in powers of four.
var DefBytesBuckets = []float64{
	4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use but callers normally obtain one from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must not be negative.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (which may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket float histogram. Buckets are cumulative at
// exposition time (Prometheus `le` semantics); internally each bucket
// count and the running sum are individual atomics, so Observe is
// lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit at the end
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns per-bucket (non-cumulative) counts aligned to bounds,
// with the +Inf bucket last.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// metric kinds, also the `# TYPE` names in the Prometheus exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// labelSep joins the values of a two-label family into one child key.
// NUL cannot appear in a metric label value, so the join is unambiguous
// and composite keys sort by first label then second.
const labelSep = "\x00"

// family is one registered metric family: a name, help text, a kind, and
// either a single unlabeled metric, a set of labeled children, or a
// read-at-scrape-time func.
type family struct {
	name, help, kind string
	label            string // first label name for vec families; "" otherwise
	label2           string // second label name for two-label families
	buckets          []float64

	mu       sync.Mutex
	children map[string]any // label value -> *Counter | *Gauge | *Histogram
	single   any            // unlabeled *Counter | *Gauge | *Histogram
	fn       func() float64 // func-backed counter/gauge; nil otherwise
}

// child returns (creating if needed) the labeled metric for val.
func (f *family) child(val string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[val]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	}
	f.children[val] = m
	return m
}

// labelValues returns the sorted label values currently present.
func (f *family) labelValues() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	vals := make([]string, 0, len(f.children))
	for v := range f.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the counter for one label value, creating it on first use.
// Callers on hot paths should resolve once and keep the *Counter.
func (v *CounterVec) With(label string) *Counter { return v.f.child(label).(*Counter) }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(label string) *Gauge { return v.f.child(label).(*Gauge) }

// CounterVec2 is a counter family keyed by two labels.
type CounterVec2 struct{ f *family }

// With returns the counter for one (v1, v2) label pair, creating it on
// first use. Hot paths should resolve once per pair and keep the
// *Counter.
func (v *CounterVec2) With(v1, v2 string) *Counter {
	return v.f.child(v1 + labelSep + v2).(*Counter)
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(label string) *Histogram { return v.f.child(label).(*Histogram) }

// Registry holds metric families and renders them (see expo.go). One
// registry serves one DB; families are registered once at Open and the
// registry is safe for concurrent registration, publication, and scraping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order is not meaningful; expo sorts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// add registers a family, panicking on a duplicate name — metric names
// are program constants, so a collision is a bug, not an input error.
func (r *Registry) add(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	r.families[f.name] = f
	r.order = append(r.order, f.name)
	return f
}

// sorted returns the families in name order.
func (r *Registry) sorted() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	out := make([]*family, len(names))
	for i, n := range names {
		out[i] = r.families[n]
	}
	return out
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, single: c})
	return c
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.add(&family{name: name, help: help, kind: kindCounter, label: label, children: map[string]any{}})
	return &CounterVec{f: f}
}

// CounterVec2 registers a counter family keyed by two labels (e.g.
// route and status class for HTTP request counts).
func (r *Registry) CounterVec2(name, help, label1, label2 string) *CounterVec2 {
	f := r.add(&family{name: name, help: help, kind: kindCounter, label: label1, label2: label2, children: map[string]any{}})
	return &CounterVec2{f: f}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for components that already keep their own
// monotonic counters (plan cache, admission control).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindCounter, fn: fn})
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, kind: kindGauge, single: g})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers and returns an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.add(&family{name: name, help: help, kind: kindHistogram, buckets: buckets, single: h})
	return h
}

// HistogramVec registers a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	f := r.add(&family{name: name, help: help, kind: kindHistogram, label: label, buckets: buckets, children: map[string]any{}})
	return &HistogramVec{f: f}
}

// lookup finds a family's metric for one label value ("" for unlabeled
// families). Func-backed families return (nil, false).
func (r *Registry) lookup(name, labelVal string) (any, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || f.fn != nil {
		return nil, false
	}
	if f.label == "" {
		return f.single, f.single != nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[labelVal]
	return m, ok
}

// CounterValue reads one counter-family value by label ("" for an
// unlabeled or func-backed family). Tests and the shell use it; it is not
// a hot path.
func (r *Registry) CounterValue(name, labelVal string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || f.kind != kindCounter {
		return 0, false
	}
	if f.fn != nil {
		return f.fn(), true
	}
	m, ok := r.lookup(name, labelVal)
	if !ok {
		return 0, false
	}
	return float64(m.(*Counter).Value()), true
}

// CounterValue2 reads one two-label counter-family value by its label
// pair. Tests use it; it is not a hot path.
func (r *Registry) CounterValue2(name, v1, v2 string) (float64, bool) {
	return r.CounterValue(name, v1+labelSep+v2)
}

// GaugeValue reads one gauge-family value by label, as CounterValue.
func (r *Registry) GaugeValue(name, labelVal string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || f.kind != kindGauge {
		return 0, false
	}
	if f.fn != nil {
		return f.fn(), true
	}
	m, ok := r.lookup(name, labelVal)
	if !ok {
		return 0, false
	}
	return m.(*Gauge).Value(), true
}

// HistogramStats reads one histogram's count and sum by label.
func (r *Registry) HistogramStats(name, labelVal string) (count uint64, sum float64, ok bool) {
	m, found := r.lookup(name, labelVal)
	if !found {
		return 0, 0, false
	}
	h, isH := m.(*Histogram)
	if !isH {
		return 0, 0, false
	}
	return h.Count(), h.Sum(), true
}

// FamilyNames lists every registered family, sorted — the exposition
// smoke tests assert against it.
func (r *Registry) FamilyNames() []string {
	fams := r.sorted()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.name
	}
	return names
}
