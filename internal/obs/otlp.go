package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// OTLP/JSON trace export. Each finished Trace is serialized as one
// OpenTelemetry ExportTraceServiceRequest document (the OTLP/HTTP JSON
// encoding) and written as a single line, so a file sink is newline-
// delimited JSON an OTLP collector — or plain jq — can consume, and an
// HTTP sink can POST each line as-is to a collector's /v1/traces.
//
// The exporter depends only on the span model in this package; it knows
// nothing about the engine. IDs are derived deterministically from the
// query ID and the span's depth-first position, which keeps golden-file
// tests byte-stable and makes the trace/span IDs correlatable with the
// query_id attribute and the slow-query log.

// otlp* mirror the OTLP/JSON wire shape. Only the fields the span model
// populates are emitted; all are part of the stable OTLP encoding.
type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string   `json:"traceId"`
	SpanID       string   `json:"spanId"`
	ParentSpanID string   `json:"parentSpanId,omitempty"`
	Name         string   `json:"name"`
	Kind         string   `json:"kind"`
	Start        string   `json:"startTimeUnixNano"`
	End          string   `json:"endTimeUnixNano"`
	Attributes   []otlpKV `json:"attributes,omitempty"`
}

type otlpKV struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue string `json:"stringValue"`
}

// OTLPExporter serializes finished traces to an io.Writer as
// newline-delimited OTLP/JSON. Export is safe for concurrent use; each
// trace is written as one atomic Write so lines never interleave.
type OTLPExporter struct {
	mu      sync.Mutex
	w       io.Writer
	service string
}

// NewOTLPExporter wraps w. service becomes the resource's service.name
// attribute on every exported document.
func NewOTLPExporter(w io.Writer, service string) *OTLPExporter {
	return &OTLPExporter{w: w, service: service}
}

// Export writes one trace as a single OTLP/JSON line.
func (e *OTLPExporter) Export(t *Trace) error {
	if e == nil || t == nil || t.Root == nil {
		return nil
	}
	doc := otlpDoc{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{
			{Key: "service.name", Value: otlpValue{StringValue: e.service}},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "repro/obs"},
			Spans: flattenSpans(t),
		}},
	}}}
	buf, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err = e.w.Write(buf)
	return err
}

// flattenSpans walks the trace depth-first, assigning deterministic IDs:
// the trace ID is the query ID, the span ID is the query ID combined
// with the span's visit order. A span with a zero start (never timed —
// e.g. a phase skipped on a plan-cache hit) inherits its parent's start
// with zero duration so the document stays temporally well-formed.
func flattenSpans(t *Trace) []otlpSpan {
	traceID := fmt.Sprintf("%032x", uint64(t.QueryID))
	var out []otlpSpan
	seq := 0
	var walk func(sp *Span, parent string, parentStart int64)
	walk = func(sp *Span, parent string, parentStart int64) {
		seq++
		id := fmt.Sprintf("%016x", uint64(t.QueryID)<<16|uint64(seq))
		start := sp.Start.UnixNano()
		if sp.Start.IsZero() {
			start = parentStart
		}
		end := start + sp.Dur.Nanoseconds()
		o := otlpSpan{
			TraceID:      traceID,
			SpanID:       id,
			ParentSpanID: parent,
			Name:         sp.Name,
			Kind:         "SPAN_KIND_INTERNAL",
			Start:        strconv.FormatInt(start, 10),
			End:          strconv.FormatInt(end, 10),
		}
		if parent == "" {
			// Root span: lead with the trace-level identity so a collector
			// query on query_id finds the whole tree.
			o.Attributes = append(o.Attributes,
				otlpKV{Key: "query_id", Value: otlpValue{StringValue: t.QueryID.String()}},
				otlpKV{Key: "sql", Value: otlpValue{StringValue: t.SQL}},
			)
		}
		for _, a := range sp.Attrs {
			o.Attributes = append(o.Attributes, otlpKV{Key: a.Key, Value: otlpValue{StringValue: a.Val}})
		}
		out = append(out, o)
		for _, c := range sp.Children {
			walk(c, id, start)
		}
	}
	walk(t.Root, "", t.Root.Start.UnixNano())
	return out
}
