package obs

import (
	"sort"
	"sync"
	"time"
)

// Active-query registry: every running query or ingest registers itself
// here for the duration of its execution, so an operator can ask "what is
// running right now?" (DB.ActiveQueries, GET /v1/queries, the shell's
// \queries) and stop a runaway statement (DB.Kill, DELETE
// /v1/queries/{id}, \kill).
//
// Like the rest of the package, the registry is engine-agnostic: it
// stores closures, not plans. The serving layer attaches a stats closure
// (a snapshot of the execution's per-operator counters) and a memory
// closure (the query's live reservation) once execution starts; Snapshot
// invokes them to build point-in-time ActiveInfo values.
//
// Cost model: registration and removal are one mutex acquisition per
// query each — never per row or per batch. Phase updates are one mutex
// acquisition per query stage (a handful per query). The per-row hot
// path never touches the registry.

// ActiveOp is one operator's live counters inside an ActiveInfo: the
// rows (and, for vectorized operators, kernel batches) it has produced
// so far, aggregated by operator kind.
type ActiveOp struct {
	Op      string
	Rows    int
	Batches int
}

// ActiveInfo is a point-in-time snapshot of one running query or ingest.
type ActiveInfo struct {
	ID    QueryID
	Kind  string // "query" or "ingest"
	SQL   string
	Start time.Time
	// Phase is the stage the statement is in right now: queued, compile,
	// execute, stream, or an ingest stage (validate, wal_append, apply,
	// fsync).
	Phase   string
	Elapsed time.Duration
	// MemBytes is the query's currently reserved (charged) memory; zero
	// before execution starts and for unobserved stages.
	MemBytes int64
	// Killed reports that Kill was called; the statement is unwinding
	// through its cancellation points.
	Killed bool
	// Operators are the live per-operator row/batch counts recorded so
	// far, sorted by operator kind. Operators appear as their counters are
	// first published, so a snapshot mid-query shows the work completed or
	// in progress, not the full plan.
	Operators []ActiveOp
}

// ActiveEntry is one statement's registration. The serving layer holds
// it for the statement's lifetime and feeds it phase changes and the
// stats/memory closures; Snapshot and Kill reach it through the set.
type ActiveEntry struct {
	id    QueryID
	kind  string
	sql   string
	start time.Time

	mu      sync.Mutex
	phase   string
	cancel  func()
	killed  bool
	statsFn func() []ActiveOp
	memFn   func() int64
}

// SetPhase records the stage the statement is in.
func (e *ActiveEntry) SetPhase(phase string) {
	e.mu.Lock()
	e.phase = phase
	e.mu.Unlock()
}

// Attach wires the execution-time closures: stats returns the live
// per-operator counters, mem the current memory reservation. Either may
// be nil.
func (e *ActiveEntry) Attach(stats func() []ActiveOp, mem func() int64) {
	e.mu.Lock()
	e.statsFn, e.memFn = stats, mem
	e.mu.Unlock()
}

// Kill marks the entry killed and fires its cancel func. Idempotent.
func (e *ActiveEntry) Kill() {
	e.mu.Lock()
	e.killed = true
	cancel := e.cancel
	e.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Killed reports whether Kill was called, so the statement's finish path
// can record outcome "killed" instead of the generic "canceled".
func (e *ActiveEntry) Killed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.killed
}

// snapshot builds the entry's point-in-time view. The closures run
// outside any registry lock (only the entry's own mutex is held while
// they are read, released before they are invoked).
func (e *ActiveEntry) snapshot(now time.Time) ActiveInfo {
	e.mu.Lock()
	info := ActiveInfo{
		ID: e.id, Kind: e.kind, SQL: e.sql, Start: e.start,
		Phase: e.phase, Killed: e.killed,
	}
	statsFn, memFn := e.statsFn, e.memFn
	e.mu.Unlock()
	info.Elapsed = now.Sub(e.start)
	if memFn != nil {
		info.MemBytes = memFn()
	}
	if statsFn != nil {
		info.Operators = statsFn()
	}
	return info
}

// ActiveSet is the registry of running statements for one DB.
type ActiveSet struct {
	mu      sync.Mutex
	entries map[QueryID]*ActiveEntry
}

// NewActiveSet returns an empty registry.
func NewActiveSet() *ActiveSet {
	return &ActiveSet{entries: map[QueryID]*ActiveEntry{}}
}

// Register adds one running statement. cancel, when non-nil, is invoked
// by Kill to stop the statement through its cooperative cancellation
// points.
func (s *ActiveSet) Register(id QueryID, kind, sql string, start time.Time, cancel func()) *ActiveEntry {
	e := &ActiveEntry{id: id, kind: kind, sql: sql, start: start, cancel: cancel}
	s.mu.Lock()
	s.entries[id] = e
	s.mu.Unlock()
	return e
}

// Remove drops a finished statement.
func (s *ActiveSet) Remove(id QueryID) {
	s.mu.Lock()
	delete(s.entries, id)
	s.mu.Unlock()
}

// Len reports how many statements are running right now.
func (s *ActiveSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Kill cancels the statement with the given ID, reporting whether it was
// found. The entry stays registered until the statement unwinds through
// its own finish path, so a racing Snapshot shows it as killed rather
// than silently gone.
func (s *ActiveSet) Kill(id QueryID) bool {
	s.mu.Lock()
	e, ok := s.entries[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	e.Kill()
	return true
}

// Snapshot returns a point-in-time view of every running statement,
// sorted by ID (registration order). The stats closures run outside the
// set lock, so a slow snapshot never blocks registrations.
func (s *ActiveSet) Snapshot() []ActiveInfo {
	s.mu.Lock()
	entries := make([]*ActiveEntry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	now := time.Now()
	out := make([]ActiveInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.snapshot(now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
