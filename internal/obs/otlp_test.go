package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// base is a fixed instant so the golden files are byte-stable.
var otlpBase = time.Unix(1700000000, 0).UTC()

// goldenQueryTrace mirrors the span tree the serving layer builds for an
// eager query: parse → rewrite → plan → admission wait → operator tree.
func goldenQueryTrace() *Trace {
	tr := NewTrace(QueryID(18), "SELECT tag_id FROM reads WHERE rssi > 10")
	tr.Root.Start = otlpBase
	tr.Root.Dur = 5 * time.Millisecond
	tr.Root.SetAttr("outcome", "ok")
	tr.Root.SetAttr("rows", "128")
	tr.Root.SetAttr("plan_cache_hit", "false")

	parse := &Span{Name: "parse", Start: otlpBase, Dur: 200 * time.Microsecond}
	rewrite := &Span{Name: "rewrite", Start: otlpBase.Add(200 * time.Microsecond), Dur: 300 * time.Microsecond}
	plan := &Span{Name: "plan", Start: otlpBase.Add(500 * time.Microsecond), Dur: 100 * time.Microsecond}
	admit := &Span{Name: "admission_wait", Start: otlpBase.Add(600 * time.Microsecond), Dur: 50 * time.Microsecond}

	scan := &Span{Name: "Scan", Start: otlpBase.Add(650 * time.Microsecond), Dur: 2 * time.Millisecond}
	scan.SetAttr("rows", "4096")
	filter := &Span{Name: "Filter", Start: otlpBase.Add(650 * time.Microsecond), Dur: 4 * time.Millisecond}
	filter.SetAttr("rows", "128")
	filter.AddChild(scan)

	tr.Root.Children = []*Span{parse, rewrite, plan, admit, filter}
	return tr
}

// goldenIngestTrace mirrors the durability pipeline: validate → WAL
// append → apply, with the group-commit fsync after. The apply span has
// a zero start to exercise parent-start inheritance.
func goldenIngestTrace() *Trace {
	tr := NewTrace(QueryID(19), "INGEST INTO reads (512 rows)")
	tr.Root.Name = "ingest"
	tr.Root.Start = otlpBase
	tr.Root.Dur = 3 * time.Millisecond
	tr.Root.SetAttr("table", "reads")
	tr.Root.SetAttr("rows", "512")
	tr.Root.SetAttr("outcome", "ok")

	validate := &Span{Name: "validate", Start: otlpBase, Dur: 100 * time.Microsecond}
	walAppend := &Span{Name: "wal_append", Start: otlpBase.Add(100 * time.Microsecond), Dur: 400 * time.Microsecond}
	walAppend.SetAttr("bytes", "16384")
	apply := &Span{Name: "apply", Dur: 500 * time.Microsecond} // zero Start: inherits root's
	fsync := &Span{Name: "fsync", Start: otlpBase.Add(time.Millisecond), Dur: 2 * time.Millisecond}

	tr.Root.Children = []*Span{validate, walAppend, apply, fsync}
	return tr
}

func checkGolden(t *testing.T, name string, tr *Trace) {
	t.Helper()
	var buf bytes.Buffer
	exp := NewOTLPExporter(&buf, "repro")
	if err := exp.Export(tr); err != nil {
		t.Fatalf("Export: %v", err)
	}
	got := buf.Bytes()

	// Every exported line must be a well-formed OTLP/JSON document.
	var doc map[string]any
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if _, ok := doc["resourceSpans"]; !ok {
		t.Fatal("export missing resourceSpans")
	}

	path := filepath.Join("testdata", name)
	if os.Getenv("REPRO_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with REPRO_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("OTLP export differs from golden %s\ngot:  %s\nwant: %s", path, got, want)
	}
}

func TestOTLPExportQueryGolden(t *testing.T) {
	checkGolden(t, "otlp_query.json", goldenQueryTrace())
}

func TestOTLPExportIngestGolden(t *testing.T) {
	checkGolden(t, "otlp_ingest.json", goldenIngestTrace())
}

// TestOTLPExportStructure decodes the export and checks the invariants a
// collector relies on: unique span IDs, parent links that resolve, the
// trace ID shared by every span, and timestamps that nest inside the
// parent's window.
func TestOTLPExportStructure(t *testing.T) {
	var buf bytes.Buffer
	exp := NewOTLPExporter(&buf, "repro-test")
	if err := exp.Export(goldenQueryTrace()); err != nil {
		t.Fatal(err)
	}
	var doc otlpDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.ResourceSpans) != 1 {
		t.Fatalf("resourceSpans = %d, want 1", len(doc.ResourceSpans))
	}
	rs := doc.ResourceSpans[0]
	if len(rs.Resource.Attributes) == 0 || rs.Resource.Attributes[0].Key != "service.name" ||
		rs.Resource.Attributes[0].Value.StringValue != "repro-test" {
		t.Fatalf("resource attributes = %+v", rs.Resource.Attributes)
	}
	spans := rs.ScopeSpans[0].Spans
	if len(spans) != 7 { // root + parse/rewrite/plan/admission + Filter + Scan
		t.Fatalf("span count = %d, want 7", len(spans))
	}
	ids := map[string]bool{}
	for _, sp := range spans {
		if len(sp.TraceID) != 32 || sp.TraceID != spans[0].TraceID {
			t.Fatalf("bad traceId %q", sp.TraceID)
		}
		if len(sp.SpanID) != 16 || ids[sp.SpanID] {
			t.Fatalf("bad or duplicate spanId %q", sp.SpanID)
		}
		ids[sp.SpanID] = true
		if sp.Kind != "SPAN_KIND_INTERNAL" {
			t.Fatalf("kind = %q", sp.Kind)
		}
	}
	root := spans[0]
	if root.ParentSpanID != "" {
		t.Fatalf("root has parent %q", root.ParentSpanID)
	}
	if root.Attributes[0].Key != "query_id" || root.Attributes[0].Value.StringValue != "q-00000018" {
		t.Fatalf("root attrs = %+v", root.Attributes)
	}
	for _, sp := range spans[1:] {
		if !ids[sp.ParentSpanID] {
			t.Fatalf("span %q has unresolved parent %q", sp.Name, sp.ParentSpanID)
		}
	}
}

// TestOTLPExportConcurrent exercises line atomicity: concurrent exports
// must produce whole, parseable lines.
func TestOTLPExportConcurrent(t *testing.T) {
	var buf syncBuffer
	exp := NewOTLPExporter(&buf, "repro")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 25; j++ {
				if err := exp.Export(goldenQueryTrace()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 100 {
		t.Fatalf("lines = %d, want 100", len(lines))
	}
	for _, ln := range lines {
		var doc map[string]any
		if err := json.Unmarshal(ln, &doc); err != nil {
			t.Fatalf("interleaved line: %v", err)
		}
	}
}

type syncBuffer struct {
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	// The exporter serializes writes under its own mutex; this buffer just
	// needs to be safe if that guarantee ever broke, so the test fails via
	// the JSON parse rather than a data race.
	return b.buf.Write(p)
}
