package sqlts

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/types"
)

// The five paper rules in extended SQL-TS (§4.3), reused across packages.
const (
	DupRuleSrc = `DEFINE duplicate ON caseR
		AS (A, B)
		WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
		ACTION DELETE B`
	ReaderRuleSrc = `DEFINE reader ON caseR
		AS (A, *B)
		WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 mins
		ACTION DELETE A`
	ReplacingRuleSrc = `DEFINE replacing ON caseR
		AS (A, B)
		WHERE A.biz_loc = 'loc2' AND B.biz_loc = 'locA' AND B.rtime - A.rtime < 20 mins
		ACTION MODIFY A.biz_loc = 'loc1'`
	CycleRuleSrc = `DEFINE cycle ON caseR
		AS (A, B, C)
		WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc
		ACTION DELETE B`
	MissingR1Src = `DEFINE missing_r1 ON caseR FROM case_with_pallet
		AS (X, A, Y)
		WHERE A.is_pallet = 1 AND ((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND A.rtime - X.rtime < 5 mins)
			OR (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND Y.rtime - A.rtime < 5 mins))
		ACTION MODIFY A.has_case_nearby = 1`
	MissingR2Src = `DEFINE missing_r2 ON caseR FROM case_with_pallet
		AS (A, *B)
		WHERE A.is_pallet = 0 OR (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
		ACTION KEEP A`
)

func mustParse(t *testing.T, src string) *Rule {
	t.Helper()
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return r
}

func TestParseDuplicateRule(t *testing.T) {
	r := mustParse(t, DupRuleSrc)
	if r.Name != "duplicate" || r.On != "caser" || r.From != "caser" {
		t.Errorf("header = %q %q %q", r.Name, r.On, r.From)
	}
	if r.ClusterBy != "epc" || r.SequenceBy != "rtime" {
		t.Errorf("defaults: cluster=%q sequence=%q", r.ClusterBy, r.SequenceBy)
	}
	if len(r.Pattern) != 2 || r.Pattern[0].Name != "a" || r.Pattern[1].Name != "b" || r.Pattern[0].Set || r.Pattern[1].Set {
		t.Errorf("pattern = %+v", r.Pattern)
	}
	if r.Action != ActionDelete || r.Target != "b" || r.TargetIndex() != 1 {
		t.Errorf("action = %v %q idx=%d", r.Action, r.Target, r.TargetIndex())
	}
	cond := sqlast.ExprSQL(r.Cond)
	if !strings.Contains(cond, "a.biz_loc = b.biz_loc") {
		t.Errorf("cond = %s", cond)
	}
	if !strings.Contains(cond, "INTERVAL '300000000' MICROSECOND") {
		t.Errorf("interval literal lost: %s", cond)
	}
}

func TestParseSetReference(t *testing.T) {
	r := mustParse(t, ReaderRuleSrc)
	if !r.Pattern[1].Set || r.Pattern[0].Set {
		t.Errorf("pattern = %+v", r.Pattern)
	}
	if r.Target != "a" || r.Action != ActionDelete {
		t.Errorf("action = %v %q", r.Action, r.Target)
	}
	ref, ok := r.RefByName("B")
	if !ok || !ref.Set {
		t.Errorf("RefByName(B) = %+v %v", ref, ok)
	}
}

func TestParseModify(t *testing.T) {
	r := mustParse(t, ReplacingRuleSrc)
	if r.Action != ActionModify || r.Target != "a" {
		t.Fatalf("action = %v %q", r.Action, r.Target)
	}
	if len(r.Assignments) != 1 || r.Assignments[0].Column != "biz_loc" {
		t.Fatalf("assignments = %+v", r.Assignments)
	}
	if got := sqlast.ExprSQL(r.Assignments[0].Value); got != "'loc1'" {
		t.Errorf("value = %s", got)
	}
}

func TestParseMultipleAssignments(t *testing.T) {
	r := mustParse(t, `DEFINE m ON r AS (A, B) WHERE A.x = B.x
		ACTION MODIFY A.p = 1, A.q = A.x + 2`)
	if len(r.Assignments) != 2 || r.Assignments[1].Column != "q" {
		t.Fatalf("assignments = %+v", r.Assignments)
	}
	if got := sqlast.ExprSQL(r.Assignments[1].Value); got != "a.x + 2" {
		t.Errorf("second value = %s", got)
	}
}

func TestParseFromAndKeys(t *testing.T) {
	r := mustParse(t, `DEFINE k ON reads FROM readsplus CLUSTER BY tag SEQUENCE BY ts
		AS (A, B) WHERE A.v = B.v ACTION KEEP A`)
	if r.From != "readsplus" || r.ClusterBy != "tag" || r.SequenceBy != "ts" {
		t.Errorf("rule = %+v", r)
	}
	if r.Action != ActionKeep {
		t.Errorf("action = %v", r.Action)
	}
}

func TestParsePaperRules(t *testing.T) {
	for _, src := range []string{DupRuleSrc, ReaderRuleSrc, ReplacingRuleSrc, CycleRuleSrc, MissingR1Src, MissingR2Src} {
		mustParse(t, src)
	}
}

func TestMissingRuleDetails(t *testing.T) {
	r1 := mustParse(t, MissingR1Src)
	if len(r1.Pattern) != 3 || r1.Target != "a" || r1.TargetIndex() != 1 {
		t.Fatalf("r1 = %+v", r1)
	}
	r2 := mustParse(t, MissingR2Src)
	if r2.From != "case_with_pallet" || r2.Action != ActionKeep {
		t.Fatalf("r2 = %+v", r2)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	for _, src := range []string{DupRuleSrc, ReaderRuleSrc, ReplacingRuleSrc, CycleRuleSrc, MissingR1Src, MissingR2Src} {
		r1 := mustParse(t, src)
		printed := r1.String()
		r2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
		}
		if r2.String() != printed {
			t.Errorf("round trip mismatch:\n%s\nvs\n%s", printed, r2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"DEFINE x ON r AS () WHERE 1=1 ACTION DELETE a":                     "empty pattern",
		"DEFINE x ON r AS (A, *B, C) WHERE A.v=1 ACTION DELETE A":           "set ref in middle",
		"DEFINE x ON r AS (A, A) WHERE A.v=1 ACTION DELETE A":               "duplicate ref",
		"DEFINE x ON r AS (A, *B) WHERE A.v=1 ACTION DELETE B":              "set target",
		"DEFINE x ON r AS (A, B) WHERE A.v=1 ACTION DELETE C":               "unknown target",
		"DEFINE x ON r AS (A, B) WHERE C.v=1 ACTION DELETE A":               "unknown ref in cond",
		"DEFINE x ON r AS (A, B) WHERE v=1 ACTION DELETE A":                 "unqualified cond column",
		"DEFINE x ON r AS (A, B) WHERE A.v=1 ACTION EXPLODE A":              "unknown action",
		"DEFINE x ON r AS (A, B) WHERE A.v=1 ACTION MODIFY A.x=1, B.y=2":    "modify two targets",
		"DEFINE x ON r AS (A, B) WHERE A.v=1":                               "missing action",
		"DEFINE x AS (A) WHERE A.v=1 ACTION DELETE A":                       "missing ON",
		"DEFINE x ON r AS (A, B) WHERE A.v = = 1 ACTION DELETE A":           "bad condition",
		"DEFINE x ON r AS (A, B) WHERE A.v=1 ACTION DELETE A trailing_junk": "trailing junk",
	}
	for src, why := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse should fail (%s):\n%s", why, src)
		}
	}
}

func TestConditionWithNestedParensAndActionWord(t *testing.T) {
	// Parentheses nest; ACTION inside parens would be a column ref and is
	// not treated as the clause boundary at depth > 0... we keep ACTION
	// reserved, but nested boolean structure must survive.
	r := mustParse(t, `DEFINE x ON r AS (A, B)
		WHERE (A.v = 1 AND (B.v = 2 OR B.v = 3))
		ACTION DELETE A`)
	if got := sqlast.ExprSQL(r.Cond); got != "a.v = 1 AND (b.v = 2 OR b.v = 3)" {
		t.Errorf("cond = %s", got)
	}
}

func TestValidateProgrammaticRule(t *testing.T) {
	r := &Rule{Name: "x", On: "r", From: "r", ClusterBy: "epc", SequenceBy: "rtime",
		Pattern: []Ref{{Name: "a"}}, Target: "a", Action: ActionDelete}
	if err := r.Validate(); err == nil {
		t.Error("nil condition must fail validation")
	}
	r.Cond = sqlast.Cmp(sqlast.OpEq, sqlast.Col("a", "v"), sqlast.Lit(types.NewInt(1)))
	if err := r.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	r.Action = ActionModify
	if err := r.Validate(); err == nil {
		t.Error("MODIFY without assignments must fail")
	}
}
