// Package sqlts implements the extended SQL-TS cleansing-rule language of
// the paper (§4.2): a sequence-pattern language with CLUSTER BY /
// SEQUENCE BY keys, a pattern of singleton and set (*) references, a
// condition over the references' columns, and an ACTION clause (DELETE,
// KEEP, or MODIFY) that the paper adds to SQL-TS.
//
// Rules parse into a validated model that internal/rulegen compiles to a
// SQL/OLAP template and internal/core analyzes for query rewriting.
package sqlts

import (
	"fmt"
	"strings"

	"repro/internal/sqlast"
)

// ActionKind enumerates the rule actions.
type ActionKind uint8

// Actions. DELETE removes the target row when the condition holds; KEEP
// retains it only when the condition holds; MODIFY rewrites columns of the
// target row when the condition holds.
const (
	ActionDelete ActionKind = iota
	ActionKeep
	ActionModify
)

func (a ActionKind) String() string {
	switch a {
	case ActionDelete:
		return "DELETE"
	case ActionKeep:
		return "KEEP"
	case ActionModify:
		return "MODIFY"
	}
	return "?"
}

// Ref is one pattern reference. A set reference (Set=true, written *B)
// binds to every row before/after the target within the sequence; a
// singleton binds to exactly one row at a fixed relative position.
type Ref struct {
	Name string
	Set  bool
}

// Assignment is one "ref.col = expr" of a MODIFY action.
type Assignment struct {
	Column string
	Value  sqlast.Expr
}

// Rule is a parsed, validated cleansing rule.
type Rule struct {
	Name string
	// On is the table the rule is defined on (always the reads table in
	// the paper); From is the input relation, which may be a view with
	// extra columns (Example 5's pallet-read union).
	On   string
	From string
	// ClusterBy and SequenceBy define the sequence model.
	ClusterBy  string
	SequenceBy string
	// Pattern is the ordered reference list.
	Pattern []Ref
	// Cond is the WHERE condition; references appear as qualified column
	// references (A.biz_loc → ColRef{Table:"a"}).
	Cond sqlast.Expr
	// Action plus its operands.
	Action      ActionKind
	Target      string // target reference name (lower case)
	Assignments []Assignment
}

// TargetIndex returns the position of the target reference in the pattern.
func (r *Rule) TargetIndex() int {
	for i, ref := range r.Pattern {
		if ref.Name == r.Target {
			return i
		}
	}
	return -1
}

// RefByName finds a pattern reference.
func (r *Rule) RefByName(name string) (Ref, bool) {
	name = strings.ToLower(name)
	for _, ref := range r.Pattern {
		if ref.Name == name {
			return ref, true
		}
	}
	return Ref{}, false
}

// Validate checks the structural constraints of the extended SQL-TS
// grammar. It is called by the parser; exported for rules constructed
// programmatically.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("sqlts: rule needs a name")
	}
	if r.On == "" {
		return fmt.Errorf("sqlts: rule %s needs an ON table", r.Name)
	}
	if r.ClusterBy == "" || r.SequenceBy == "" {
		return fmt.Errorf("sqlts: rule %s needs CLUSTER BY and SEQUENCE BY keys", r.Name)
	}
	if len(r.Pattern) == 0 {
		return fmt.Errorf("sqlts: rule %s has an empty pattern", r.Name)
	}
	seen := map[string]bool{}
	for i, ref := range r.Pattern {
		if ref.Name == "" {
			return fmt.Errorf("sqlts: rule %s has an unnamed pattern reference", r.Name)
		}
		if seen[ref.Name] {
			return fmt.Errorf("sqlts: rule %s repeats pattern reference %q", r.Name, ref.Name)
		}
		seen[ref.Name] = true
		if ref.Set && i != 0 && i != len(r.Pattern)-1 {
			return fmt.Errorf("sqlts: rule %s: set reference *%s must be first or last in the pattern", r.Name, ref.Name)
		}
	}
	tref, ok := r.RefByName(r.Target)
	if !ok {
		return fmt.Errorf("sqlts: rule %s: action target %q is not a pattern reference", r.Name, r.Target)
	}
	if tref.Set {
		return fmt.Errorf("sqlts: rule %s: action target %q must be a singleton reference", r.Name, r.Target)
	}
	if r.Action == ActionModify && len(r.Assignments) == 0 {
		return fmt.Errorf("sqlts: rule %s: MODIFY needs at least one assignment", r.Name)
	}
	if r.Action != ActionModify && len(r.Assignments) > 0 {
		return fmt.Errorf("sqlts: rule %s: only MODIFY takes assignments", r.Name)
	}
	if r.Cond == nil {
		return fmt.Errorf("sqlts: rule %s needs a WHERE condition", r.Name)
	}
	// Every qualifier used in the condition and assignments must be a
	// pattern reference.
	var badRef string
	check := func(e sqlast.Expr) {
		sqlast.VisitExprs(e, func(x sqlast.Expr) {
			if cr, ok := x.(*sqlast.ColRef); ok {
				if cr.Table == "" {
					badRef = cr.Name + " (unqualified; write ref.column)"
					return
				}
				if !seen[strings.ToLower(cr.Table)] {
					badRef = cr.Table + "." + cr.Name
				}
			}
		})
	}
	check(r.Cond)
	for _, a := range r.Assignments {
		check(a.Value)
	}
	if badRef != "" {
		return fmt.Errorf("sqlts: rule %s: condition references unknown pattern reference: %s", r.Name, badRef)
	}
	return nil
}

// String renders the rule in the extended SQL-TS syntax.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DEFINE %s\nON %s\nFROM %s\nCLUSTER BY %s\nSEQUENCE BY %s\nAS (", r.Name, r.On, r.From, r.ClusterBy, r.SequenceBy)
	for i, ref := range r.Pattern {
		if i > 0 {
			b.WriteString(", ")
		}
		if ref.Set {
			b.WriteString("*")
		}
		b.WriteString(strings.ToUpper(ref.Name))
	}
	b.WriteString(")\nWHERE ")
	b.WriteString(sqlast.ExprSQL(r.Cond))
	b.WriteString("\nACTION ")
	b.WriteString(r.Action.String())
	b.WriteString(" ")
	if r.Action == ActionModify {
		for i, a := range r.Assignments {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s.%s = %s", strings.ToUpper(r.Target), a.Column, sqlast.ExprSQL(a.Value))
		}
	} else {
		b.WriteString(strings.ToUpper(r.Target))
	}
	return b.String()
}
