package sqlts

import (
	"fmt"
	"strings"

	"repro/internal/sqllex"
	"repro/internal/sqlparser"
)

// Parse parses one rule in the extended SQL-TS syntax:
//
//	DEFINE <name>
//	ON <table>
//	[FROM <table>]             -- defaults to the ON table
//	[CLUSTER BY <column>]      -- defaults to epc
//	[SEQUENCE BY <column>]     -- defaults to rtime
//	AS ( [*]Ref, [*]Ref, ... )
//	WHERE <condition>
//	ACTION DELETE <Ref> | KEEP <Ref> | MODIFY <Ref>.<col> = <expr> [, ...]
//
// Conditions use full SQL expression syntax including interval shorthand
// ("B.rtime - A.rtime < 5 mins").
func Parse(src string) (*Rule, error) {
	p := &ruleParser{src: src, lex: sqllex.New(src)}
	r, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

type ruleParser struct {
	src string
	lex *sqllex.Lexer
}

func (p *ruleParser) expectKeyword(kw string) error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	if t.Kind != sqllex.TokIdent || t.Text != kw {
		return p.lex.Errorf(t.Pos, "expected %s, found %q", strings.ToUpper(kw), t.Text)
	}
	return nil
}

func (p *ruleParser) acceptKeyword(kw string) bool {
	t, err := p.lex.Peek()
	if err != nil || t.Kind != sqllex.TokIdent || t.Text != kw {
		return false
	}
	p.lex.Next()
	return true
}

func (p *ruleParser) expectIdent() (string, error) {
	t, err := p.lex.Next()
	if err != nil {
		return "", err
	}
	if t.Kind != sqllex.TokIdent {
		return "", p.lex.Errorf(t.Pos, "expected identifier, found %q", t.Text)
	}
	return t.Text, nil
}

func (p *ruleParser) expectOp(op string) error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	if t.Kind != sqllex.TokOp || t.Text != op {
		return p.lex.Errorf(t.Pos, "expected %q, found %q", op, t.Text)
	}
	return nil
}

func (p *ruleParser) parse() (*Rule, error) {
	r := &Rule{ClusterBy: "epc", SequenceBy: "rtime"}
	if err := p.expectKeyword("define"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	r.Name = name
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	if r.On, err = p.expectIdent(); err != nil {
		return nil, err
	}
	r.From = r.On
	if p.acceptKeyword("from") {
		if r.From, err = p.expectIdent(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("cluster") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		if r.ClusterBy, err = p.expectIdent(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("sequence") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		if r.SequenceBy, err = p.expectIdent(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		set := false
		t, err := p.lex.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == sqllex.TokOp && t.Text == "*" {
			set = true
			t, err = p.lex.Next()
			if err != nil {
				return nil, err
			}
		}
		if t.Kind != sqllex.TokIdent {
			return nil, p.lex.Errorf(t.Pos, "expected pattern reference, found %q", t.Text)
		}
		r.Pattern = append(r.Pattern, Ref{Name: t.Text, Set: set})
		t, err = p.lex.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == sqllex.TokOp && t.Text == "," {
			continue
		}
		if t.Kind == sqllex.TokOp && t.Text == ")" {
			break
		}
		return nil, p.lex.Errorf(t.Pos, "expected ',' or ')' in pattern, found %q", t.Text)
	}
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	// The condition runs until the ACTION keyword at nesting depth 0;
	// slice the source and reuse the SQL expression parser.
	condText, err := p.sliceUntilKeyword("action")
	if err != nil {
		return nil, err
	}
	cond, err := sqlparser.ParseExpr(condText)
	if err != nil {
		return nil, fmt.Errorf("sqlts: rule %s: bad condition: %w", r.Name, err)
	}
	r.Cond = cond

	if err := p.expectKeyword("action"); err != nil {
		return nil, err
	}
	t, err := p.lex.Next()
	if err != nil {
		return nil, err
	}
	if t.Kind != sqllex.TokIdent {
		return nil, p.lex.Errorf(t.Pos, "expected action, found %q", t.Text)
	}
	switch t.Text {
	case "delete", "keep":
		if t.Text == "delete" {
			r.Action = ActionDelete
		} else {
			r.Action = ActionKeep
		}
		if r.Target, err = p.expectIdent(); err != nil {
			return nil, err
		}
	case "modify":
		r.Action = ActionModify
		for {
			ref, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if r.Target == "" {
				r.Target = ref
			} else if r.Target != ref {
				return nil, fmt.Errorf("sqlts: rule %s: MODIFY assignments must all target %q", r.Name, r.Target)
			}
			if err := p.expectOp("."); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			valText, err := p.sliceUntilAssignmentEnd()
			if err != nil {
				return nil, err
			}
			val, err := sqlparser.ParseExpr(valText)
			if err != nil {
				return nil, fmt.Errorf("sqlts: rule %s: bad assignment value: %w", r.Name, err)
			}
			r.Assignments = append(r.Assignments, Assignment{Column: col, Value: val})
			t, err := p.lex.Peek()
			if err != nil {
				return nil, err
			}
			if t.Kind == sqllex.TokOp && t.Text == "," {
				p.lex.Next()
				continue
			}
			break
		}
	default:
		return nil, p.lex.Errorf(t.Pos, "unknown action %q (want DELETE, KEEP, or MODIFY)", t.Text)
	}
	t, err = p.lex.Next()
	if err != nil {
		return nil, err
	}
	if t.Kind == sqllex.TokOp && t.Text == ";" {
		t, err = p.lex.Next()
		if err != nil {
			return nil, err
		}
	}
	if t.Kind != sqllex.TokEOF {
		return nil, p.lex.Errorf(t.Pos, "unexpected %q after rule", t.Text)
	}
	return r, nil
}

// sliceUntilKeyword consumes tokens up to (not including) the given
// keyword at parenthesis depth 0 and returns the covered source text.
func (p *ruleParser) sliceUntilKeyword(kw string) (string, error) {
	start, err := p.lex.Peek()
	if err != nil {
		return "", err
	}
	depth := 0
	end := start.Pos
	for {
		t, err := p.lex.Peek()
		if err != nil {
			return "", err
		}
		if t.Kind == sqllex.TokEOF {
			return "", p.lex.Errorf(t.Pos, "expected %s clause", strings.ToUpper(kw))
		}
		if depth == 0 && t.Kind == sqllex.TokIdent && t.Text == kw {
			return p.src[start.Pos:end], nil
		}
		if t.Kind == sqllex.TokOp {
			switch t.Text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
		p.lex.Next()
		end = t.Pos + tokenLen(t)
	}
}

// sliceUntilAssignmentEnd consumes an assignment value expression: up to a
// ',' at depth 0, a ';', or EOF.
func (p *ruleParser) sliceUntilAssignmentEnd() (string, error) {
	start, err := p.lex.Peek()
	if err != nil {
		return "", err
	}
	depth := 0
	end := start.Pos
	for {
		t, err := p.lex.Peek()
		if err != nil {
			return "", err
		}
		if t.Kind == sqllex.TokEOF {
			return p.src[start.Pos:end], nil
		}
		if t.Kind == sqllex.TokOp && depth == 0 && (t.Text == "," || t.Text == ";") {
			return p.src[start.Pos:end], nil
		}
		if t.Kind == sqllex.TokOp {
			switch t.Text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
		p.lex.Next()
		end = t.Pos + tokenLen(t)
	}
}

// tokenLen approximates a token's source length; string literals include
// their quotes and escapes, so recompute from the raw text length.
func tokenLen(t sqllex.Token) int {
	if t.Kind == sqllex.TokString {
		// Escaped quotes double; bound by re-quoting.
		n := 2 + len(t.Text) + strings.Count(t.Text, "'")
		return n
	}
	if t.Kind == sqllex.TokParam {
		return len(t.Text) + 1
	}
	return len(t.Text)
}
