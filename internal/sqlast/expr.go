// Package sqlast defines the abstract syntax tree shared by the SQL
// parser, the SQL-TS rule compiler, and the query-rewrite engine, together
// with a deterministic printer. Rewrites in this system are genuine SQL
// text transformations — a rewritten query can be printed, inspected, and
// re-parsed — mirroring the paper's architecture where the rewrite unit
// sits outside the DBMS and submits SQL to it.
package sqlast

import (
	"repro/internal/types"
)

// Expr is a SQL scalar expression.
type Expr interface {
	exprNode()
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Table string
	Name  string
}

// Const is a literal value.
type Const struct {
	V types.Value
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// IsComparison reports whether op is one of =, !=, <, <=, >, >=.
func (op BinOp) IsComparison() bool { return op <= OpGe }

// IsArith reports whether op is one of +, -, *, /.
func (op BinOp) IsArith() bool { return op >= OpAdd }

func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Negate returns the comparison with operands' order preserved but the
// relation complemented (e.g. < becomes >=). Only valid for comparisons.
func (op BinOp) Negate() BinOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// Flip returns the comparison that holds when the operands are swapped
// (e.g. a < b  ⇔  b > a). Only valid for comparisons.
func (op BinOp) Flip() BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	OpNot UnOp = iota
	OpNeg
)

// Un is a unary expression.
type Un struct {
	Op UnOp
	E  Expr
}

// IsNull is "E IS [NOT] NULL".
type IsNull struct {
	E   Expr
	Neg bool
}

// When is one CASE arm.
type When struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // may be nil (NULL)
}

// In is "E [NOT] IN (list)" or "E [NOT] IN (subquery)".
type In struct {
	E    Expr
	List []Expr
	Sub  Stmt // non-nil for subquery form
	Neg  bool
}

// Exists is "[NOT] EXISTS (subquery)".
type Exists struct {
	Sub Stmt
	Neg bool
}

// Like is "E [NOT] LIKE pattern" with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern Expr
	Neg     bool
}

// FuncCall is a scalar or aggregate function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool
}

// OrderItem is one ORDER BY / window-order element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// FrameUnit distinguishes ROWS from RANGE frames.
type FrameUnit uint8

// Frame units.
const (
	FrameRows FrameUnit = iota
	FrameRange
)

func (u FrameUnit) String() string {
	if u == FrameRange {
		return "RANGE"
	}
	return "ROWS"
}

// BoundType enumerates window frame bound kinds.
type BoundType uint8

// Frame bound kinds, in increasing frame order.
const (
	BoundUnboundedPreceding BoundType = iota
	BoundPreceding
	BoundCurrentRow
	BoundFollowing
	BoundUnboundedFollowing
)

// FrameBound is one endpoint of a window frame.
type FrameBound struct {
	Type   BoundType
	Offset Expr // for BoundPreceding / BoundFollowing
}

// Frame is a window frame specification.
type Frame struct {
	Unit  FrameUnit
	Start FrameBound
	End   FrameBound
}

// WindowExpr is "func(arg) OVER (PARTITION BY ... ORDER BY ... frame)".
type WindowExpr struct {
	Func      string
	Arg       Expr // nil for COUNT(*) / ROW_NUMBER()
	Star      bool
	Partition []Expr
	Order     []OrderItem
	Frame     *Frame // nil means the SQL default frame
}

func (*ColRef) exprNode()     {}
func (*Const) exprNode()      {}
func (*Bin) exprNode()        {}
func (*Un) exprNode()         {}
func (*IsNull) exprNode()     {}
func (*Case) exprNode()       {}
func (*In) exprNode()         {}
func (*Exists) exprNode()     {}
func (*Like) exprNode()       {}
func (*FuncCall) exprNode()   {}
func (*WindowExpr) exprNode() {}

// Helper constructors keep rewrite-engine code terse.

// Col returns a column reference.
func Col(table, name string) *ColRef { return &ColRef{Table: table, Name: name} }

// Lit returns a literal.
func Lit(v types.Value) *Const { return &Const{V: v} }

// And conjoins non-nil expressions; it returns nil when all are nil.
func And(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Bin{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Or disjoins non-nil expressions; it returns nil when all are nil.
func Or(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Bin{Op: OpOr, L: out, R: e}
		}
	}
	return out
}

// Cmp returns a comparison expression.
func Cmp(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Conjuncts flattens an expression tree into its top-level AND-ed parts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Disjuncts flattens an expression tree into its top-level OR-ed parts.
func Disjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == OpOr {
		return append(Disjuncts(b.L), Disjuncts(b.R)...)
	}
	return []Expr{e}
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ColRef:
		c := *e
		return &c
	case *Const:
		c := *e
		return &c
	case *Bin:
		return &Bin{Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R)}
	case *Un:
		return &Un{Op: e.Op, E: CloneExpr(e.E)}
	case *IsNull:
		return &IsNull{E: CloneExpr(e.E), Neg: e.Neg}
	case *Case:
		out := &Case{Whens: make([]When, len(e.Whens)), Else: CloneExpr(e.Else)}
		for i, w := range e.Whens {
			out.Whens[i] = When{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)}
		}
		return out
	case *In:
		out := &In{E: CloneExpr(e.E), Neg: e.Neg, Sub: CloneStmt(e.Sub)}
		for _, x := range e.List {
			out.List = append(out.List, CloneExpr(x))
		}
		return out
	case *Exists:
		return &Exists{Sub: CloneStmt(e.Sub), Neg: e.Neg}
	case *Like:
		return &Like{E: CloneExpr(e.E), Pattern: CloneExpr(e.Pattern), Neg: e.Neg}
	case *FuncCall:
		out := &FuncCall{Name: e.Name, Distinct: e.Distinct, Star: e.Star}
		for _, a := range e.Args {
			out.Args = append(out.Args, CloneExpr(a))
		}
		return out
	case *WindowExpr:
		out := &WindowExpr{Func: e.Func, Arg: CloneExpr(e.Arg), Star: e.Star}
		for _, p := range e.Partition {
			out.Partition = append(out.Partition, CloneExpr(p))
		}
		for _, o := range e.Order {
			out.Order = append(out.Order, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
		}
		if e.Frame != nil {
			f := *e.Frame
			f.Start.Offset = CloneExpr(e.Frame.Start.Offset)
			f.End.Offset = CloneExpr(e.Frame.End.Offset)
			out.Frame = &f
		}
		return out
	}
	panic("sqlast: CloneExpr: unknown node")
}

// VisitExprs walks e depth-first, calling f on every sub-expression.
// Subquery bodies are not entered.
func VisitExprs(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *Bin:
		VisitExprs(e.L, f)
		VisitExprs(e.R, f)
	case *Un:
		VisitExprs(e.E, f)
	case *IsNull:
		VisitExprs(e.E, f)
	case *Case:
		for _, w := range e.Whens {
			VisitExprs(w.Cond, f)
			VisitExprs(w.Then, f)
		}
		VisitExprs(e.Else, f)
	case *In:
		VisitExprs(e.E, f)
		for _, x := range e.List {
			VisitExprs(x, f)
		}
	case *Like:
		VisitExprs(e.E, f)
		VisitExprs(e.Pattern, f)
	case *FuncCall:
		for _, a := range e.Args {
			VisitExprs(a, f)
		}
	case *WindowExpr:
		VisitExprs(e.Arg, f)
		for _, p := range e.Partition {
			VisitExprs(p, f)
		}
		for _, o := range e.Order {
			VisitExprs(o.Expr, f)
		}
	}
}

// MapColRefs returns a copy of e with every column reference replaced by
// f's result. Subquery bodies are not entered.
func MapColRefs(e Expr, f func(*ColRef) Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ColRef:
		return f(e)
	case *Const:
		return e
	case *Bin:
		return &Bin{Op: e.Op, L: MapColRefs(e.L, f), R: MapColRefs(e.R, f)}
	case *Un:
		return &Un{Op: e.Op, E: MapColRefs(e.E, f)}
	case *IsNull:
		return &IsNull{E: MapColRefs(e.E, f), Neg: e.Neg}
	case *Case:
		out := &Case{Whens: make([]When, len(e.Whens)), Else: MapColRefs(e.Else, f)}
		for i, w := range e.Whens {
			out.Whens[i] = When{Cond: MapColRefs(w.Cond, f), Then: MapColRefs(w.Then, f)}
		}
		return out
	case *In:
		out := &In{E: MapColRefs(e.E, f), Neg: e.Neg, Sub: e.Sub}
		for _, x := range e.List {
			out.List = append(out.List, MapColRefs(x, f))
		}
		return out
	case *Exists:
		return e
	case *Like:
		return &Like{E: MapColRefs(e.E, f), Pattern: MapColRefs(e.Pattern, f), Neg: e.Neg}
	case *FuncCall:
		out := &FuncCall{Name: e.Name, Distinct: e.Distinct, Star: e.Star}
		for _, a := range e.Args {
			out.Args = append(out.Args, MapColRefs(a, f))
		}
		return out
	case *WindowExpr:
		out := &WindowExpr{Func: e.Func, Arg: MapColRefs(e.Arg, f), Star: e.Star, Frame: e.Frame}
		for _, p := range e.Partition {
			out.Partition = append(out.Partition, MapColRefs(p, f))
		}
		for _, o := range e.Order {
			out.Order = append(out.Order, OrderItem{Expr: MapColRefs(o.Expr, f), Desc: o.Desc})
		}
		return out
	}
	panic("sqlast: MapColRefs: unknown node")
}
