package sqlast

import (
	"testing"

	"repro/internal/types"
)

func lit(i int64) *Const { return Lit(types.NewInt(i)) }

func TestAndOrHelpers(t *testing.T) {
	if And() != nil || Or() != nil {
		t.Error("empty And/Or must be nil")
	}
	a, b, c := Col("", "a"), Col("", "b"), Col("", "c")
	if got := ExprSQL(And(a, nil, b, c)); got != "a AND b AND c" {
		t.Errorf("And = %q", got)
	}
	if got := ExprSQL(Or(a, b)); got != "a OR b" {
		t.Errorf("Or = %q", got)
	}
	if got := ExprSQL(And(nil, a)); got != "a" {
		t.Errorf("And(nil, a) = %q", got)
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	e := And(Col("", "a"), Or(Col("", "b"), Col("", "c")), Col("", "d"))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d", len(cs))
	}
	ds := Disjuncts(cs[1])
	if len(ds) != 2 {
		t.Fatalf("Disjuncts = %d", len(ds))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) must be nil")
	}
}

func TestOpNegateFlip(t *testing.T) {
	cases := []struct{ op, neg, flip BinOp }{
		{OpEq, OpNe, OpEq},
		{OpLt, OpGe, OpGt},
		{OpLe, OpGt, OpGe},
		{OpGt, OpLe, OpLt},
		{OpGe, OpLt, OpLe},
	}
	for _, c := range cases {
		if c.op.Negate() != c.neg {
			t.Errorf("%v.Negate() = %v", c.op, c.op.Negate())
		}
		if c.op.Flip() != c.flip {
			t.Errorf("%v.Flip() = %v", c.op, c.op.Flip())
		}
	}
	if !OpLe.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison misclassifies")
	}
	if !OpMul.IsArith() || OpEq.IsArith() {
		t.Error("IsArith misclassifies")
	}
}

func TestCloneExprIsDeep(t *testing.T) {
	orig := &Bin{Op: OpAnd,
		L: Cmp(OpEq, Col("t", "x"), lit(1)),
		R: &Case{Whens: []When{{Cond: Col("", "c"), Then: lit(2)}}, Else: lit(3)},
	}
	cl := CloneExpr(orig).(*Bin)
	cl.L.(*Bin).L.(*ColRef).Name = "mutated"
	if orig.L.(*Bin).L.(*ColRef).Name != "x" {
		t.Error("CloneExpr shares column nodes")
	}
}

func TestCloneStmtIsDeep(t *testing.T) {
	sel := &SelectStmt{
		With:  []CTE{{Name: "v", Query: &SelectStmt{Items: []SelectItem{{Star: true}}, From: []TableExpr{&TableName{Name: "r"}}}}},
		Items: []SelectItem{{Expr: Col("", "a"), Alias: "out"}},
		From:  []TableExpr{&TableName{Name: "v"}},
		Where: Cmp(OpGt, Col("", "a"), lit(0)),
	}
	cl := CloneStmt(sel).(*SelectStmt)
	cl.From[0].(*TableName).Name = "other"
	cl.Where.(*Bin).L.(*ColRef).Name = "zz"
	if sel.From[0].(*TableName).Name != "v" || sel.Where.(*Bin).L.(*ColRef).Name != "a" {
		t.Error("CloneStmt shares nodes")
	}
}

func TestMapColRefs(t *testing.T) {
	e := And(Cmp(OpEq, Col("a", "x"), Col("b", "y")), &IsNull{E: Col("a", "z")})
	out := MapColRefs(e, func(cr *ColRef) Expr {
		if cr.Table == "a" {
			return Col("", cr.Name)
		}
		return cr
	})
	if got := ExprSQL(out); got != "x = b.y AND z IS NULL" {
		t.Errorf("MapColRefs = %q", got)
	}
	// Original untouched.
	if got := ExprSQL(e); got != "a.x = b.y AND a.z IS NULL" {
		t.Errorf("original mutated: %q", got)
	}
}

func TestVisitExprsCoversNodes(t *testing.T) {
	e := &Case{
		Whens: []When{{Cond: &In{E: Col("", "a"), List: []Expr{lit(1), lit(2)}}, Then: &FuncCall{Name: "abs", Args: []Expr{Col("", "b")}}}},
		Else:  &Un{Op: OpNeg, E: Col("", "c")},
	}
	var cols []string
	VisitExprs(e, func(x Expr) {
		if cr, ok := x.(*ColRef); ok {
			cols = append(cols, cr.Name)
		}
	})
	if len(cols) != 3 {
		t.Errorf("visited cols = %v", cols)
	}
}

func TestVisitTables(t *testing.T) {
	inner := &SelectStmt{Items: []SelectItem{{Star: true}}, From: []TableExpr{&TableName{Name: "deep"}}}
	s := &SelectStmt{
		With:  []CTE{{Name: "v", Query: &SelectStmt{Items: []SelectItem{{Star: true}}, From: []TableExpr{&TableName{Name: "cte_src"}}}}},
		Items: []SelectItem{{Star: true}},
		From: []TableExpr{
			&JoinExpr{Left: &TableName{Name: "l"}, Right: &SubqueryTable{Query: inner, Alias: "sq"}},
		},
	}
	var names []string
	VisitTables(s, func(te TableExpr) {
		if tn, ok := te.(*TableName); ok {
			names = append(names, tn.Name)
		}
	})
	want := map[string]bool{"cte_src": true, "l": true, "deep": true}
	if len(names) != 3 {
		t.Fatalf("visited = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected table %q", n)
		}
	}
}

func TestTableNameBinding(t *testing.T) {
	if (&TableName{Name: "t"}).Binding() != "t" {
		t.Error("binding without alias")
	}
	if (&TableName{Name: "t", Alias: "x"}).Binding() != "x" {
		t.Error("binding with alias")
	}
}

func TestPrinterParenthesization(t *testing.T) {
	// (a OR b) AND c requires parens on the left.
	e := &Bin{Op: OpAnd, L: &Bin{Op: OpOr, L: Col("", "a"), R: Col("", "b")}, R: Col("", "c")}
	if got := ExprSQL(e); got != "(a OR b) AND c" {
		t.Errorf("print = %q", got)
	}
	// a - (b - c) must keep parens to stay right-associated.
	e2 := &Bin{Op: OpSub, L: Col("", "a"), R: &Bin{Op: OpSub, L: Col("", "b"), R: Col("", "c")}}
	if got := ExprSQL(e2); got != "a - (b - c)" {
		t.Errorf("print = %q", got)
	}
	// Left-nested subtraction needs no parens.
	e3 := &Bin{Op: OpSub, L: &Bin{Op: OpSub, L: Col("", "a"), R: Col("", "b")}, R: Col("", "c")}
	if got := ExprSQL(e3); got != "a - b - c" {
		t.Errorf("print = %q", got)
	}
}
