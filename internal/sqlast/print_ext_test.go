package sqlast_test

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Hand-built ASTs covering printer branches the parser tests reach only
// incidentally. Every printed form must reparse to the same text.
func TestPrinterBranchCoverage(t *testing.T) {
	i := func(n int64) sqlast.Expr { return sqlast.Lit(types.NewInt(n)) }
	stmts := []sqlast.Stmt{
		// Qualified star + DISTINCT + HAVING + OFFSET.
		&sqlast.SelectStmt{
			Distinct: true,
			Items:    []sqlast.SelectItem{{Star: true, StarTable: "t"}},
			From:     []sqlast.TableExpr{&sqlast.TableName{Name: "r", Alias: "t"}},
			GroupBy:  []sqlast.Expr{sqlast.Col("t", "a")},
			Having:   sqlast.Cmp(sqlast.OpGt, &sqlast.FuncCall{Name: "count", Star: true}, i(1)),
			Offset:   ptr(int64(2)),
		},
		// Left join with ON, order by desc, limit+offset.
		&sqlast.SelectStmt{
			Items: []sqlast.SelectItem{{Expr: sqlast.Col("a", "x"), Alias: "out"}},
			From: []sqlast.TableExpr{&sqlast.JoinExpr{
				Type:  sqlast.JoinLeft,
				Left:  &sqlast.TableName{Name: "a"},
				Right: &sqlast.SubqueryTable{Query: simpleSelect(), Alias: "sq"},
				On:    sqlast.Cmp(sqlast.OpEq, sqlast.Col("a", "x"), sqlast.Col("sq", "x")),
			}},
			OrderBy: []sqlast.OrderItem{{Expr: sqlast.Col("a", "x"), Desc: true}},
			Limit:   ptr(int64(3)),
			Offset:  ptr(int64(1)),
		},
		// NOT EXISTS, NOT IN subquery, NOT LIKE, IS NOT NULL together.
		&sqlast.SelectStmt{
			Items: []sqlast.SelectItem{{Star: true}},
			From:  []sqlast.TableExpr{&sqlast.TableName{Name: "r"}},
			Where: sqlast.And(
				&sqlast.Exists{Sub: simpleSelect(), Neg: true},
				&sqlast.In{E: sqlast.Col("", "x"), Sub: simpleSelect(), Neg: true},
				&sqlast.Like{E: sqlast.Col("", "s"), Pattern: sqlast.Lit(types.NewString("%x")), Neg: true},
				&sqlast.IsNull{E: sqlast.Col("", "y"), Neg: true},
			),
		},
		// Set operations chained.
		&sqlast.SetOpStmt{
			Op: sqlast.SetExcept,
			L:  &sqlast.SetOpStmt{Op: sqlast.SetUnion, All: true, L: simpleSelect(), R: simpleSelect()},
			R:  &sqlast.SetOpStmt{Op: sqlast.SetIntersect, L: simpleSelect(), R: simpleSelect()},
		},
		// All frame-bound spellings.
		&sqlast.SelectStmt{
			Items: []sqlast.SelectItem{
				{Expr: win(sqlast.FrameRows, sqlast.BoundUnboundedPreceding, sqlast.BoundCurrentRow), Alias: "w1"},
				{Expr: win(sqlast.FrameRows, sqlast.BoundPreceding, sqlast.BoundFollowing), Alias: "w2"},
				{Expr: win(sqlast.FrameRange, sqlast.BoundCurrentRow, sqlast.BoundUnboundedFollowing), Alias: "w3"},
			},
			From: []sqlast.TableExpr{&sqlast.TableName{Name: "r"}},
		},
	}
	for _, s := range stmts {
		p1 := sqlast.SQL(s)
		re, err := sqlparser.Parse(p1)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nsql: %s", err, p1)
		}
		if p2 := sqlast.SQL(re); p1 != p2 {
			t.Fatalf("round-trip mismatch:\nfirst : %s\nsecond: %s", p1, p2)
		}
	}
}

func simpleSelect() *sqlast.SelectStmt {
	return &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: sqlast.Col("", "x")}},
		From:  []sqlast.TableExpr{&sqlast.TableName{Name: "u"}},
	}
}

func win(unit sqlast.FrameUnit, start, end sqlast.BoundType) *sqlast.WindowExpr {
	off := sqlast.Lit(types.NewInt(2))
	mk := func(t sqlast.BoundType) sqlast.FrameBound {
		fb := sqlast.FrameBound{Type: t}
		if t == sqlast.BoundPreceding || t == sqlast.BoundFollowing {
			fb.Offset = off
		}
		return fb
	}
	return &sqlast.WindowExpr{
		Func:      "sum",
		Arg:       sqlast.Col("", "v"),
		Partition: []sqlast.Expr{sqlast.Col("", "p")},
		Order:     []sqlast.OrderItem{{Expr: sqlast.Col("", "k")}},
		Frame:     &sqlast.Frame{Unit: unit, Start: mk(start), End: mk(end)},
	}
}

func ptr(v int64) *int64 { return &v }

func TestExprSQLCoversScalarShapes(t *testing.T) {
	exprs := []sqlast.Expr{
		&sqlast.Un{Op: sqlast.OpNeg, E: sqlast.Col("", "x")},
		&sqlast.Un{Op: sqlast.OpNeg, E: sqlast.Lit(types.NewFloat(1.5))},
		&sqlast.Un{Op: sqlast.OpNot, E: &sqlast.Un{Op: sqlast.OpNot, E: sqlast.Col("", "b")}},
		&sqlast.Case{Whens: []sqlast.When{{Cond: sqlast.Col("", "c"), Then: sqlast.Lit(types.Null)}}},
		&sqlast.FuncCall{Name: "count", Distinct: true, Args: []sqlast.Expr{sqlast.Col("", "x")}},
		sqlast.Lit(types.NewBool(false)),
		sqlast.Lit(types.NewTime(0)),
	}
	for _, e := range exprs {
		p1 := sqlast.ExprSQL(e)
		re, err := sqlparser.ParseExpr(p1)
		if err != nil {
			t.Fatalf("%q does not reparse: %v", p1, err)
		}
		if p2 := sqlast.ExprSQL(re); !strings.EqualFold(p1, p2) {
			t.Fatalf("expr round-trip: %q vs %q", p1, p2)
		}
	}
}
