package sqlast

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// SQL renders a statement as deterministic SQL text that the parser in
// internal/sqlparser accepts. Rewritten queries are printed with this
// function before being handed back to the engine, so print → parse must
// round-trip; the tests enforce that.
func SQL(s Stmt) string {
	var b strings.Builder
	printStmt(&b, s)
	return b.String()
}

// ExprSQL renders a scalar expression.
func ExprSQL(e Expr) string {
	var b strings.Builder
	printExpr(&b, e, 0)
	return b.String()
}

func printStmt(b *strings.Builder, s Stmt) {
	switch s := s.(type) {
	case *SelectStmt:
		printSelect(b, s)
	case *SetOpStmt:
		printStmt(b, s.L)
		b.WriteString(" ")
		b.WriteString(s.Op.String())
		b.WriteString(" ")
		if s.All && s.Op == SetUnion {
			b.WriteString("ALL ")
		}
		printStmt(b, s.R)
	default:
		panic("sqlast: print: unknown statement")
	}
}

func printSelect(b *strings.Builder, s *SelectStmt) {
	if len(s.With) > 0 {
		b.WriteString("WITH ")
		for i, c := range s.With {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteString(" AS (")
			printStmt(b, c.Query)
			b.WriteString(")")
		}
		b.WriteString(" ")
	}
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			b.WriteString(it.StarTable)
			b.WriteString(".*")
		case it.Star:
			b.WriteString("*")
		default:
			printExpr(b, it.Expr, 0)
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			printTable(b, t)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		printExpr(b, s.Where, 0)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, g, 0)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		printExpr(b, s.Having, 0)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		printOrder(b, s.OrderBy)
	}
	if s.Limit != nil {
		fmt.Fprintf(b, " LIMIT %d", *s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(b, " OFFSET %d", *s.Offset)
	}
}

func printOrder(b *strings.Builder, items []OrderItem) {
	for i, o := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		printExpr(b, o.Expr, 0)
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
}

func printTable(b *strings.Builder, t TableExpr) {
	switch t := t.(type) {
	case *TableName:
		b.WriteString(t.Name)
		if t.Alias != "" {
			b.WriteString(" ")
			b.WriteString(t.Alias)
		}
	case *SubqueryTable:
		b.WriteString("(")
		printStmt(b, t.Query)
		b.WriteString(")")
		if t.Alias != "" {
			b.WriteString(" ")
			b.WriteString(t.Alias)
		}
	case *JoinExpr:
		printTable(b, t.Left)
		b.WriteString(" ")
		b.WriteString(t.Type.String())
		b.WriteString(" ")
		printTable(b, t.Right)
		if t.On != nil {
			b.WriteString(" ON ")
			printExpr(b, t.On, 0)
		}
	default:
		panic("sqlast: print: unknown table expression")
	}
}

// Operator precedence for parenthesization: higher binds tighter.
func prec(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul, OpDiv:
		return 5
	}
	return 6
}

// nodePrec is the precedence level at which an expression node binds when
// used as an operand; anything weaker than its context gets parenthesized.
// Postfix predicates (IS NULL, IN, LIKE) live at comparison level; NOT
// sits between AND and comparisons.
func nodePrec(e Expr) int {
	switch e := e.(type) {
	case *Bin:
		return prec(e.Op)
	case *Un:
		if e.Op == OpNot {
			return 2
		}
		return 6
	case *IsNull, *In, *Like:
		return 3
	}
	return 6
}

func printExpr(b *strings.Builder, e Expr, parentPrec int) {
	if e != nil {
		if p := nodePrec(e); p < parentPrec {
			b.WriteString("(")
			printExpr(b, e, 0)
			b.WriteString(")")
			return
		}
	}
	switch e := e.(type) {
	case nil:
		b.WriteString("NULL")
	case *ColRef:
		if e.Table != "" {
			b.WriteString(e.Table)
			b.WriteString(".")
		}
		b.WriteString(e.Name)
	case *Const:
		b.WriteString(e.V.SQL())
	case *Bin:
		p := prec(e.Op)
		left := p
		if e.Op.IsComparison() {
			// Comparisons are non-associative: both operands must bind
			// tighter, or reparsing would stop at the first comparison.
			left = p + 1
		}
		printExpr(b, e.L, left)
		b.WriteString(" ")
		b.WriteString(e.Op.String())
		b.WriteString(" ")
		// Right operand gets p+1 so same-precedence chains stay
		// left-associated on reparse (a-b-c prints as a - b - c).
		printExpr(b, e.R, p+1)
	case *Un:
		switch e.Op {
		case OpNot:
			b.WriteString("NOT ")
			printExpr(b, e.E, 3)
		case OpNeg:
			// Numeric literals fold at parse time, so fold them at print
			// time too — otherwise print→parse would not be stable.
			if c, ok := e.E.(*Const); ok && (c.V.Kind() == types.KindInt || c.V.Kind() == types.KindFloat) {
				if v, err := types.Arith(types.OpSub, types.NewInt(0), c.V); err == nil {
					b.WriteString(Lit(v).V.SQL())
					return
				}
			}
			// Render the operand first: a leading '-' would fuse into a
			// SQL line comment ("--"), so parenthesize in that case.
			var inner strings.Builder
			printExpr(&inner, e.E, 6)
			b.WriteString("-")
			if strings.HasPrefix(inner.String(), "-") {
				b.WriteString("(")
				b.WriteString(inner.String())
				b.WriteString(")")
			} else {
				b.WriteString(inner.String())
			}
		}
	case *IsNull:
		printExpr(b, e.E, 4)
		if e.Neg {
			b.WriteString(" IS NOT NULL")
		} else {
			b.WriteString(" IS NULL")
		}
	case *Case:
		b.WriteString("CASE")
		for _, w := range e.Whens {
			b.WriteString(" WHEN ")
			printExpr(b, w.Cond, 0)
			b.WriteString(" THEN ")
			printExpr(b, w.Then, 0)
		}
		if e.Else != nil {
			b.WriteString(" ELSE ")
			printExpr(b, e.Else, 0)
		}
		b.WriteString(" END")
	case *In:
		printExpr(b, e.E, 4)
		if e.Neg {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if e.Sub != nil {
			printStmt(b, e.Sub)
		} else {
			for i, x := range e.List {
				if i > 0 {
					b.WriteString(", ")
				}
				printExpr(b, x, 0)
			}
		}
		b.WriteString(")")
	case *Exists:
		if e.Neg {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS (")
		printStmt(b, e.Sub)
		b.WriteString(")")
	case *Like:
		printExpr(b, e.E, 4)
		if e.Neg {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		printExpr(b, e.Pattern, 4)
	case *FuncCall:
		b.WriteString(strings.ToUpper(e.Name))
		b.WriteString("(")
		if e.Star {
			b.WriteString("*")
		} else {
			if e.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range e.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				printExpr(b, a, 0)
			}
		}
		b.WriteString(")")
	case *WindowExpr:
		b.WriteString(strings.ToUpper(e.Func))
		b.WriteString("(")
		if e.Star {
			b.WriteString("*")
		} else if e.Arg != nil {
			printExpr(b, e.Arg, 0)
		}
		b.WriteString(") OVER (")
		sep := ""
		if len(e.Partition) > 0 {
			b.WriteString("PARTITION BY ")
			for i, p := range e.Partition {
				if i > 0 {
					b.WriteString(", ")
				}
				printExpr(b, p, 0)
			}
			sep = " "
		}
		if len(e.Order) > 0 {
			b.WriteString(sep)
			b.WriteString("ORDER BY ")
			printOrder(b, e.Order)
			sep = " "
		}
		if e.Frame != nil {
			b.WriteString(sep)
			b.WriteString(e.Frame.Unit.String())
			b.WriteString(" BETWEEN ")
			printBound(b, e.Frame.Start)
			b.WriteString(" AND ")
			printBound(b, e.Frame.End)
		}
		b.WriteString(")")
	default:
		panic("sqlast: print: unknown expression")
	}
}

func printBound(b *strings.Builder, fb FrameBound) {
	switch fb.Type {
	case BoundUnboundedPreceding:
		b.WriteString("UNBOUNDED PRECEDING")
	case BoundPreceding:
		printExpr(b, fb.Offset, 6)
		b.WriteString(" PRECEDING")
	case BoundCurrentRow:
		b.WriteString("CURRENT ROW")
	case BoundFollowing:
		printExpr(b, fb.Offset, 6)
		b.WriteString(" FOLLOWING")
	case BoundUnboundedFollowing:
		b.WriteString("UNBOUNDED FOLLOWING")
	}
}
