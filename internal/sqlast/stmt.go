package sqlast

// Stmt is a queryable statement: a SELECT or a set operation over two.
type Stmt interface {
	stmtNode()
}

// CTE is one WITH-list entry.
type CTE struct {
	Name  string
	Query Stmt
}

// SelectItem is one element of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string
	// Star is "*"; StarTable qualifies "t.*".
	Star      bool
	StarTable string
}

// TableExpr is a FROM-clause element.
type TableExpr interface {
	tableNode()
}

// TableName references a base table, view, or CTE, with optional alias.
type TableName struct {
	Name  string
	Alias string
}

// Binding returns the name this table is visible under in the query.
func (t *TableName) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// SubqueryTable is a derived table in FROM.
type SubqueryTable struct {
	Query Stmt
	Alias string
}

// JoinType enumerates supported join types.
type JoinType uint8

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
)

func (t JoinType) String() string {
	if t == JoinLeft {
		return "LEFT JOIN"
	}
	return "JOIN"
}

// JoinExpr is an ANSI join.
type JoinExpr struct {
	Type  JoinType
	Left  TableExpr
	Right TableExpr
	On    Expr
}

func (*TableName) tableNode()     {}
func (*SubqueryTable) tableNode() {}
func (*JoinExpr) tableNode()      {}

// SelectStmt is a SELECT query. From holds a comma-separated list whose
// elements may themselves be ANSI join trees.
type SelectStmt struct {
	With     []CTE
	Distinct bool
	Items    []SelectItem
	From     []TableExpr
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

// SetOpType enumerates set operations.
type SetOpType uint8

// Set operations.
const (
	SetUnion SetOpType = iota
	SetExcept
	SetIntersect
)

func (o SetOpType) String() string {
	switch o {
	case SetExcept:
		return "EXCEPT"
	case SetIntersect:
		return "INTERSECT"
	}
	return "UNION"
}

// SetOpStmt combines two statements with UNION [ALL] / EXCEPT / INTERSECT.
// ALL applies to UNION only.
type SetOpStmt struct {
	Op   SetOpType
	All  bool
	L, R Stmt
}

func (*SelectStmt) stmtNode() {}
func (*SetOpStmt) stmtNode()  {}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *SelectStmt:
		out := &SelectStmt{Distinct: s.Distinct}
		for _, c := range s.With {
			out.With = append(out.With, CTE{Name: c.Name, Query: CloneStmt(c.Query)})
		}
		for _, it := range s.Items {
			out.Items = append(out.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias, Star: it.Star, StarTable: it.StarTable})
		}
		for _, t := range s.From {
			out.From = append(out.From, CloneTableExpr(t))
		}
		out.Where = CloneExpr(s.Where)
		for _, g := range s.GroupBy {
			out.GroupBy = append(out.GroupBy, CloneExpr(g))
		}
		out.Having = CloneExpr(s.Having)
		for _, o := range s.OrderBy {
			out.OrderBy = append(out.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
		}
		if s.Limit != nil {
			l := *s.Limit
			out.Limit = &l
		}
		if s.Offset != nil {
			o := *s.Offset
			out.Offset = &o
		}
		return out
	case *SetOpStmt:
		return &SetOpStmt{Op: s.Op, All: s.All, L: CloneStmt(s.L), R: CloneStmt(s.R)}
	}
	panic("sqlast: CloneStmt: unknown node")
}

// CloneTableExpr deep-copies a FROM element.
func CloneTableExpr(t TableExpr) TableExpr {
	switch t := t.(type) {
	case *TableName:
		c := *t
		return &c
	case *SubqueryTable:
		return &SubqueryTable{Query: CloneStmt(t.Query), Alias: t.Alias}
	case *JoinExpr:
		return &JoinExpr{Type: t.Type, Left: CloneTableExpr(t.Left), Right: CloneTableExpr(t.Right), On: CloneExpr(t.On)}
	}
	panic("sqlast: CloneTableExpr: unknown node")
}

// VisitTables walks every TableExpr in a statement, including those inside
// CTEs and derived tables, calling f on each.
func VisitTables(s Stmt, f func(TableExpr)) {
	switch s := s.(type) {
	case nil:
	case *SelectStmt:
		for _, c := range s.With {
			VisitTables(c.Query, f)
		}
		for _, t := range s.From {
			visitTableExpr(t, f)
		}
	case *SetOpStmt:
		VisitTables(s.L, f)
		VisitTables(s.R, f)
	}
}

func visitTableExpr(t TableExpr, f func(TableExpr)) {
	f(t)
	switch t := t.(type) {
	case *SubqueryTable:
		VisitTables(t.Query, f)
	case *JoinExpr:
		visitTableExpr(t.Left, f)
		visitTableExpr(t.Right, f)
	}
}
