package repro

import (
	"strings"
	"sync"

	"repro/internal/core"
)

// planCacheCapacity bounds the number of cached rewrites. Eviction is
// FIFO: serving workloads repeat a small set of query templates, and a
// stale entry (older catalog epoch) can never be hit again, so ordering
// by insertion ages stale entries out naturally.
const planCacheCapacity = 256

// cacheKey identifies one rewrite+plan: the exact SQL text, the forced
// strategy, the explicit rule restriction, and the catalog epoch at
// rewrite time. Any rule definition, data load, index build, or ANALYZE
// bumps the epoch, so entries planned against the old catalog miss.
type cacheKey struct {
	sql      string
	strategy Strategy
	rules    string
	epoch    uint64
}

func newCacheKey(sql string, o *queryOpts, epoch uint64) cacheKey {
	return cacheKey{
		sql:      sql,
		strategy: o.strategy,
		rules:    strings.Join(o.rules, "\x1f"),
		epoch:    epoch,
	}
}

// planCache memoizes finished rewrites (chosen statement, cost, physical
// plan). Plans hold no per-execution state, so one cached plan may be
// executed by many queries concurrently. The cache has its own mutex:
// lookups happen under DB.mu's read side, where many queries race.
type planCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*core.Result
	order   []cacheKey // insertion order, for FIFO eviction
	hits    uint64
	misses  uint64
}

func newPlanCache() *planCache {
	return &planCache{entries: map[cacheKey]*core.Result{}}
}

// get returns the cached rewrite and counts the lookup as a hit or miss.
func (c *planCache) get(k cacheKey) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return res, ok
}

// put stores a rewrite, evicting the oldest entry at capacity.
func (c *planCache) put(k cacheKey, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		return
	}
	if len(c.order) >= planCacheCapacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[k] = res
	c.order = append(c.order, k)
}

// evict drops one entry, if present. The serving layer calls it when a
// query fails with ErrResourceExhausted: the cached plan is fine, but
// dropping it guarantees a retry under a raised limit re-resolves fresh
// instead of requiring a manual cache reset.
func (c *planCache) evict(k cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; !ok {
		return
	}
	delete(c.entries, k)
	for i, o := range c.order {
		if o == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

func (c *planCache) counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[cacheKey]*core.Result{}
	c.order = nil
	c.hits, c.misses = 0, 0
}

// PlanCacheStats reports the cumulative behaviour of a DB's rewrite+plan
// cache.
type PlanCacheStats struct {
	// Hits and Misses count lookups since Open (or the last reset).
	Hits, Misses uint64
	// Entries is the number of plans currently cached.
	Entries int
}

// PlanCacheStats returns the DB's current cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.cache.stats() }

// ResetPlanCache drops every cached plan and zeroes the counters.
func (db *DB) ResetPlanCache() { db.cache.reset() }
